package query_test

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"testing"

	"sdpopt/internal/query"
	"sdpopt/internal/workload"
)

// permuted rebuilds q with its relation list shuffled by perm (perm[i] is
// the new position of old relation i), remapping predicates, filters and
// ORDER BY accordingly — a semantically identical query written in a
// different order.
func permuted(t *testing.T, q *query.Query, perm []int, shufflePreds func([]query.Pred)) *query.Query {
	t.Helper()
	rels := make([]int, len(q.Rels))
	for i, r := range q.Rels {
		rels[perm[i]] = r
	}
	var preds []query.Pred
	for _, p := range q.Preds {
		if p.Implied {
			continue // query.New recomputes the closure
		}
		preds = append(preds, query.Pred{
			LeftRel: perm[p.LeftRel], LeftCol: p.LeftCol,
			RightRel: perm[p.RightRel], RightCol: p.RightCol,
		})
	}
	if shufflePreds != nil {
		shufflePreds(preds)
	}
	var filters []query.Filter
	for _, f := range q.Filters {
		filters = append(filters, query.Filter{Rel: perm[f.Rel], Col: f.Col, Bound: f.Bound})
	}
	var ob *query.OrderSpec
	if q.OrderBy != nil {
		ob = &query.OrderSpec{Rel: perm[q.OrderBy.Rel], Col: q.OrderBy.Col}
	}
	q2, err := query.NewFiltered(q.Cat, rels, preds, filters, ob)
	if err != nil {
		t.Fatalf("permuted query rejected: %v", err)
	}
	return q2
}

// TestCanonicalOrderInsensitive is the core fingerprint property: shuffling
// relation order, predicate order, and predicate orientation must not
// change the canonical encoding.
func TestCanonicalOrderInsensitive(t *testing.T) {
	cat := workload.PaperSchema()
	rng := rand.New(rand.NewSource(7))
	for _, topo := range []workload.Topology{workload.Chain, workload.Star, workload.Cycle, workload.StarChain} {
		qs, err := workload.Instances(workload.Spec{
			Cat: cat, Topology: topo, NumRelations: 9,
			Ordered: true, FilterFraction: 0.5, Seed: int64(topo) + 1,
		}, 5)
		if err != nil {
			t.Fatal(err)
		}
		for qi, q := range qs {
			want := q.Canonical()
			for trial := 0; trial < 4; trial++ {
				perm := rng.Perm(len(q.Rels))
				q2 := permuted(t, q, perm, func(ps []query.Pred) {
					rng.Shuffle(len(ps), func(i, j int) { ps[i], ps[j] = ps[j], ps[i] })
					// Also flip predicate orientation: A=B vs B=A.
					for i := range ps {
						if rng.Intn(2) == 0 {
							ps[i].LeftRel, ps[i].RightRel = ps[i].RightRel, ps[i].LeftRel
							ps[i].LeftCol, ps[i].RightCol = ps[i].RightCol, ps[i].LeftCol
						}
					}
				})
				if got := q2.Canonical(); got != want {
					t.Fatalf("topology %v instance %d trial %d: canonical changed under permutation %v\nwant %s\ngot  %s",
						topo, qi, trial, perm, want, got)
				}
				if q.Fingerprint() != q2.Fingerprint() {
					t.Fatalf("fingerprints differ for identical queries")
				}
			}
		}
	}
}

// TestCanonicalImpliedClosure: writing the transitive predicate explicitly
// (A=B, B=C, A=C) must fingerprint identically to leaving it implied.
func TestCanonicalImpliedClosure(t *testing.T) {
	cat := workload.PaperSchema()
	base := []query.Pred{
		{LeftRel: 0, LeftCol: 0, RightRel: 1, RightCol: 0},
		{LeftRel: 1, LeftCol: 0, RightRel: 2, RightCol: 0},
	}
	withClosure := append(append([]query.Pred{}, base...),
		query.Pred{LeftRel: 0, LeftCol: 0, RightRel: 2, RightCol: 0})
	rels := []int{1, 2, 3}
	q1, err := query.New(cat, rels, base, nil)
	if err != nil {
		t.Fatal(err)
	}
	q2, err := query.New(cat, rels, withClosure, nil)
	if err != nil {
		t.Fatal(err)
	}
	if q1.Canonical() != q2.Canonical() {
		t.Fatalf("implied vs explicit closure differ:\n%s\n%s", q1.Canonical(), q2.Canonical())
	}
}

// TestCanonicalFilterNormalization: duplicate bounds collapse to the
// minimum, and bounds at or above the column's NDV (which select
// everything) are dropped.
func TestCanonicalFilterNormalization(t *testing.T) {
	cat := workload.PaperSchema()
	rels := []int{1, 2}
	preds := []query.Pred{{LeftRel: 0, LeftCol: 0, RightRel: 1, RightCol: 0}}
	mk := func(filters []query.Filter) *query.Query {
		q, err := query.NewFiltered(cat, rels, preds, filters, nil)
		if err != nil {
			t.Fatal(err)
		}
		return q
	}
	ndv := cat.Relation(1).Cols[1].NDV

	// Two bounds on one column ≡ the tighter one alone.
	a := mk([]query.Filter{{Rel: 0, Col: 1, Bound: 50}, {Rel: 0, Col: 1, Bound: 10}})
	b := mk([]query.Filter{{Rel: 0, Col: 1, Bound: 10}})
	if a.Canonical() != b.Canonical() {
		t.Errorf("min-bound collapse failed:\n%s\n%s", a.Canonical(), b.Canonical())
	}

	// A bound covering the whole domain ≡ no filter.
	c := mk([]query.Filter{{Rel: 0, Col: 1, Bound: int64(ndv) + 100}})
	d := mk(nil)
	if c.Canonical() != d.Canonical() {
		t.Errorf("no-op filter not dropped:\n%s\n%s", c.Canonical(), d.Canonical())
	}

	// A selective bound must NOT equal no filter.
	if b.Canonical() == d.Canonical() {
		t.Error("selective filter vanished from the encoding")
	}
}

// TestCanonicalOrderByEqClass: ordering on any member of a join-column
// equivalence class is the same interesting order, so the fingerprint must
// coincide; ordering on a non-join column must not.
func TestCanonicalOrderByEqClass(t *testing.T) {
	cat := workload.PaperSchema()
	rels := []int{1, 2, 3}
	preds := []query.Pred{
		{LeftRel: 0, LeftCol: 0, RightRel: 1, RightCol: 0},
		{LeftRel: 1, LeftCol: 0, RightRel: 2, RightCol: 0},
	}
	mk := func(ob *query.OrderSpec) *query.Query {
		q, err := query.New(cat, rels, preds, ob)
		if err != nil {
			t.Fatal(err)
		}
		return q
	}
	onA := mk(&query.OrderSpec{Rel: 0, Col: 0})
	onC := mk(&query.OrderSpec{Rel: 2, Col: 0})
	if onA.Canonical() != onC.Canonical() {
		t.Errorf("ORDER BY on equivalent join columns differ:\n%s\n%s", onA.Canonical(), onC.Canonical())
	}
	plain := mk(nil)
	if onA.Canonical() == plain.Canonical() {
		t.Error("ORDER BY vanished from the encoding")
	}
	nonJoin := mk(&query.OrderSpec{Rel: 0, Col: 5})
	if nonJoin.Canonical() == onA.Canonical() || nonJoin.Canonical() == plain.Canonical() {
		t.Error("non-join-column ORDER BY not distinguished")
	}
}

// TestCanonicalCollisionFree: across a varied generated workload, equal
// fingerprints must only occur for queries whose canonical encodings are
// equal, and the encoding must separate queries that differ in cheap
// semantic invariants (relation multiset, predicate count, filters, order).
func TestCanonicalCollisionFree(t *testing.T) {
	cat := workload.PaperSchema()
	type qinfo struct {
		canon string
		inv   string
	}
	byFP := map[string]qinfo{}
	total, distinct := 0, 0
	for _, topo := range []workload.Topology{workload.Chain, workload.Star, workload.Cycle, workload.Clique, workload.StarChain} {
		for _, n := range []int{4, 7, 10} {
			qs, err := workload.Instances(workload.Spec{
				Cat: cat, Topology: topo, NumRelations: n,
				Ordered: topo != workload.Clique, FilterFraction: 0.4,
				Seed: int64(100*int(topo) + n),
			}, 8)
			if err != nil {
				t.Fatal(err)
			}
			for _, q := range qs {
				total++
				// Cheap semantic invariants any two equal queries share.
				rels := append([]int{}, q.Rels...)
				sort.Ints(rels)
				inv := fmt.Sprintf("%v|p%d|f%d|o%v", rels, len(q.Preds), len(q.Filters), q.OrderBy != nil)
				fp := q.Fingerprint()
				if prev, ok := byFP[fp]; ok {
					if prev.canon != q.Canonical() {
						t.Fatalf("fingerprint collision: same digest, different canonical forms\n%s\n%s", prev.canon, q.Canonical())
					}
					if prev.inv != inv {
						t.Fatalf("canonical collision: different invariants %q vs %q share encoding %s", prev.inv, inv, q.Canonical())
					}
				} else {
					byFP[fp] = qinfo{canon: q.Canonical(), inv: inv}
					distinct++
				}
			}
		}
	}
	// The generator samples varied shapes; near-total distinctness is the
	// expected outcome (identical draws may legitimately repeat).
	if distinct < total*3/4 {
		t.Fatalf("only %d/%d distinct fingerprints — encoding is collapsing distinct queries", distinct, total)
	}
}

// TestCanonicalDeterministic: repeated calls are stable (the search is
// budgeted, but within one query it must always land on the same leaf).
func TestCanonicalDeterministic(t *testing.T) {
	cat := workload.PaperSchema()
	qs, err := workload.Instances(workload.Spec{
		Cat: cat, Topology: workload.StarChain, NumRelations: 12,
		Ordered: true, FilterFraction: 0.5, Seed: 42,
	}, 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range qs {
		first := q.Canonical()
		for i := 0; i < 3; i++ {
			if got := q.Canonical(); got != first {
				t.Fatalf("canonical not deterministic:\n%s\n%s", first, got)
			}
		}
	}
}

// TestCanonFrameAlignsAcrossSpellings: Canon()'s relabelings are the bridge
// the plan cache relies on — translating query-local relation indexes and
// equivalence class ids through the canonical frame must line equivalent
// spellings up exactly: same catalog relation behind every canonical
// position, same join-column member set behind every canonical class rank.
func TestCanonFrameAlignsAcrossSpellings(t *testing.T) {
	cat := workload.PaperSchema()
	rng := rand.New(rand.NewSource(11))
	eqMembers := func(q *query.Query, cn *query.Canon, rank int) string {
		id := cn.EqFrom[rank]
		var ms []string
		for rel := 0; rel < q.NumRelations(); rel++ {
			for col := range q.Relation(rel).Cols {
				if q.EqClass(rel, col) == id {
					ms = append(ms, fmt.Sprintf("%d.%d", cn.RelTo[rel], col))
				}
			}
		}
		sort.Strings(ms)
		return strings.Join(ms, ",")
	}
	for _, topo := range []workload.Topology{workload.Chain, workload.Star, workload.StarChain} {
		qs, err := workload.Instances(workload.Spec{
			Cat: cat, Topology: topo, NumRelations: 8,
			Ordered: true, FilterFraction: 0.5, Seed: int64(topo) + 31,
		}, 4)
		if err != nil {
			t.Fatal(err)
		}
		for qi, q := range qs {
			cn := q.Canon()
			for i := range cn.RelTo {
				if cn.RelFrom[cn.RelTo[i]] != i {
					t.Fatalf("instance %d: RelTo/RelFrom are not inverses at %d", qi, i)
				}
			}
			for id := range cn.EqTo {
				if cn.EqFrom[cn.EqTo[id]] != id {
					t.Fatalf("instance %d: EqTo/EqFrom are not inverses at %d", qi, id)
				}
			}
			q2 := permuted(t, q, rng.Perm(len(q.Rels)), nil)
			cn2 := q2.Canon()
			if cn.Encoding != cn2.Encoding {
				t.Fatalf("instance %d: equivalent spellings disagree on encoding", qi)
			}
			for pos := range cn.RelFrom {
				if q.Rels[cn.RelFrom[pos]] != q2.Rels[cn2.RelFrom[pos]] {
					t.Fatalf("instance %d: canonical position %d backs catalog relation %d vs %d",
						qi, pos, q.Rels[cn.RelFrom[pos]], q2.Rels[cn2.RelFrom[pos]])
				}
			}
			if q.NumEqClasses() != q2.NumEqClasses() {
				t.Fatalf("instance %d: class counts differ", qi)
			}
			for rank := 0; rank < q.NumEqClasses(); rank++ {
				if a, b := eqMembers(q, cn, rank), eqMembers(q2, cn2, rank); a != b {
					t.Fatalf("instance %d: canonical class %d has members {%s} vs {%s}", qi, rank, a, b)
				}
			}
		}
	}
}
