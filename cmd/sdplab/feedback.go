package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"sdpopt"
)

// feedbackCmd renders a cardinality feedback dump — the
// /debug/cardinality.json document a feedback-enabled server serves — as
// the counter lines and the per-object q-error/staleness table with
// sparkline windows. The dump is read from a file argument, or stdin with
// "-", so `curl .../debug/cardinality.json | sdplab feedback -` works.
func feedbackCmd(args []string) error {
	fs := flag.NewFlagSet("feedback", flag.ExitOnError)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("usage: sdplab feedback <cardinality.json | ->")
	}
	var r io.Reader = os.Stdin
	if path := fs.Arg(0); path != "-" {
		f, err := os.Open(path)
		if err != nil {
			return err
		}
		defer f.Close()
		r = f
	}
	dump, err := sdpopt.ReadFeedbackDump(r)
	if err != nil {
		return err
	}
	fmt.Print(dump.Render())
	return nil
}
