// Command sdpexplain optimizes one query with DP, IDP and SDP and prints
// the chosen plans side by side, EXPLAIN-style. The query is either
// generated from a topology template or supplied as SQL text.
//
// Usage:
//
//	sdpexplain -topology star-chain -rels 15 -seed 7
//	sdpexplain -topology star -rels 20 -ordered        # DP will report *
//	sdpexplain -sql 'SELECT * FROM R20 f, R3 d WHERE f.c1 = d.c2'
//	sdpexplain -topology star -rels 8 -dot | dot -Tsvg > plans.svg
//	sdpexplain -topology star -rels 12 -levels         # per-level trace table
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"sdpopt"
)

func main() {
	topo := flag.String("topology", "star-chain", "chain | star | cycle | clique | star-chain")
	rels := flag.Int("rels", 15, "number of relations")
	seed := flag.Int64("seed", 1, "workload seed")
	ordered := flag.Bool("ordered", false, "add an ORDER BY on a join column")
	budgetMB := flag.Int64("budget", 1024, "memory budget in MB")
	skewed := flag.Bool("skewed", false, "use the skewed schema")
	dot := flag.Bool("dot", false, "emit Graphviz DOT (join graph + each plan) instead of text")
	levels := flag.Bool("levels", false, "print a per-level enumeration trace table for each technique")
	sqlText := flag.String("sql", "", "optimize this SQL text instead of a generated query")
	flag.Parse()

	if err := run(*topo, *rels, *seed, *ordered, *budgetMB<<20, *skewed, *dot, *levels, *sqlText); err != nil {
		fmt.Fprintln(os.Stderr, "sdpexplain:", err)
		os.Exit(1)
	}
}

func run(topoName string, rels int, seed int64, ordered bool, budget int64, skewed, dot, levels bool, sqlText string) error {
	cat := sdpopt.PaperSchema()
	if skewed {
		cat = sdpopt.SkewedSchema()
	}
	var q *sdpopt.Query
	if sqlText != "" {
		var err error
		q, err = sdpopt.ParseSQL(cat, sqlText)
		if err != nil {
			return err
		}
	} else {
		topos := map[string]sdpopt.Topology{
			"chain": sdpopt.Chain, "star": sdpopt.Star, "cycle": sdpopt.Cycle,
			"clique": sdpopt.Clique, "star-chain": sdpopt.StarChain,
		}
		topo, ok := topos[strings.ToLower(topoName)]
		if !ok {
			return fmt.Errorf("unknown topology %q", topoName)
		}
		qs, err := sdpopt.Instances(sdpopt.WorkloadSpec{
			Cat: cat, Topology: topo, NumRelations: rels, Ordered: ordered, Seed: seed,
		}, 1)
		if err != nil {
			return err
		}
		q = qs[0]
	}
	if dot {
		fmt.Println(sdpopt.JoinGraphDOT(q))
	} else {
		fmt.Println("Query:")
		fmt.Println(q.SQL())
		fmt.Println()
	}

	var sink *sdpopt.TraceMemSink
	if levels {
		sink = &sdpopt.TraceMemSink{}
		sdpopt.SetDefaultObserver(sdpopt.NewObserver(sink))
		defer sdpopt.SetDefaultObserver(nil)
	}

	type alg struct {
		name string
		run  func() (*sdpopt.Plan, sdpopt.Stats, error)
	}
	idp7 := sdpopt.IDPDefaults()
	idp7.Budget = budget
	idp4 := idp7
	idp4.K = 4
	sdpOpts := sdpopt.SDPOptions()
	sdpOpts.Budget = budget
	algs := []alg{
		{"DP", func() (*sdpopt.Plan, sdpopt.Stats, error) {
			return sdpopt.OptimizeDP(q, sdpopt.DPOptions{Budget: budget})
		}},
		{"IDP(7)", func() (*sdpopt.Plan, sdpopt.Stats, error) { return sdpopt.OptimizeIDP(q, idp7) }},
		{"IDP(4)", func() (*sdpopt.Plan, sdpopt.Stats, error) { return sdpopt.OptimizeIDP(q, idp4) }},
		{"SDP", func() (*sdpopt.Plan, sdpopt.Stats, error) { return sdpopt.OptimizeSDP(q, sdpOpts) }},
	}
	var refCost float64
	seen := 0
	for _, a := range algs {
		p, stats, err := a.run()
		fmt.Printf("=== %s ===\n", a.name)
		if sink != nil {
			events := sink.Events()
			printLevels(events[seen:])
			seen = len(events)
		}
		if errors.Is(err, sdpopt.ErrBudget) {
			fmt.Printf("* infeasible: exceeds the %d MB budget (peak %.1f MB)\n\n", budget>>20, stats.Memo.PeakMB())
			continue
		}
		if err != nil {
			return fmt.Errorf("%s: %w", a.name, err)
		}
		if refCost == 0 {
			refCost = p.Cost
		}
		fmt.Printf("cost=%.2f (%.3fx)  time=%v  plans-costed=%d  sim-mem=%.1fMB\n",
			p.Cost, p.Cost/refCost, stats.Elapsed.Round(time.Microsecond),
			stats.PlansCosted, stats.Memo.PeakMB())
		if dot {
			fmt.Println(sdpopt.PlanDOT(q, p))
			continue
		}
		fmt.Println("shape:", sdpopt.PlanShape(q, p))
		fmt.Println(sdpopt.Explain(q, p))
	}
	return nil
}

// printLevels renders one technique's per-level enumeration trace. IDP
// traces show each restart's levels in sequence.
func printLevels(events []sdpopt.TraceEvent) {
	printed := false
	for _, e := range events {
		if e.Type != sdpopt.EvLevel {
			continue
		}
		if !printed {
			printed = true
			fmt.Printf("%6s %9s %9s %12s %9s %8s %12s\n",
				"Level", "Created", "Pruned", "PlansCosted", "Alive", "SimMB", "Time")
		}
		fmt.Printf("%6d %9d %9d %12d %9d %8.1f %12v\n",
			attrInt(e.Attrs, "level"), attrInt(e.Attrs, "classes_created"),
			attrInt(e.Attrs, "classes_pruned"), attrInt(e.Attrs, "plans_costed"),
			attrInt(e.Attrs, "classes_alive"),
			float64(attrInt(e.Attrs, "sim_bytes"))/(1<<20),
			time.Duration(attrInt(e.Attrs, "dur_ns")).Round(time.Microsecond))
	}
	if printed {
		fmt.Println()
	}
}

// attrInt reads a numeric event attribute of either integer width.
func attrInt(attrs map[string]any, key string) int64 {
	switch v := attrs[key].(type) {
	case int:
		return int64(v)
	case int64:
		return v
	case float64:
		return int64(v)
	}
	return 0
}
