package dp

import (
	"errors"
	"strconv"
	"testing"

	"sdpopt/internal/memo"
	"sdpopt/internal/obs"
)

func TestElapsedOnBudgetAbort(t *testing.T) {
	q := starQuery(t, 8)
	_, stats, err := Optimize(q, Options{Budget: 64 * 1024})
	if !errors.Is(err, memo.ErrBudget) {
		t.Fatalf("err = %v, want ErrBudget", err)
	}
	if stats.Elapsed <= 0 {
		t.Error("Elapsed not populated on budget abort")
	}
}

func TestElapsedOnSeedLevelAbort(t *testing.T) {
	// A budget smaller than one class aborts inside NewEngine's level-1
	// seeding; the stats must still carry wall time.
	q := chainQuery(t, 3)
	_, stats, err := Optimize(q, Options{Budget: 1})
	if !errors.Is(err, memo.ErrBudget) {
		t.Fatalf("err = %v, want ErrBudget", err)
	}
	if stats.Elapsed <= 0 {
		t.Error("Elapsed not populated on seed-level abort")
	}
}

func TestObserveRunMetricsAndEvents(t *testing.T) {
	sink := &obs.MemSink{}
	ob := obs.New(sink)
	q := chainQuery(t, 5)
	_, stats, err := Optimize(q, Options{Obs: ob})
	if err != nil {
		t.Fatalf("Optimize: %v", err)
	}
	if got := ob.Counter(obs.MPlansCosted).Value(); got != stats.PlansCosted {
		t.Errorf("plans-costed counter = %d, stats say %d", got, stats.PlansCosted)
	}
	if got := ob.Counter(obs.MClassesCreated).Value(); got != stats.Memo.ClassesCreated {
		t.Errorf("classes-created counter = %d, stats say %d", got, stats.Memo.ClassesCreated)
	}
	if got := ob.Counter(obs.Label(obs.MOptimizations, "tech", "DP")).Value(); got != 1 {
		t.Errorf("optimizations{tech=DP} = %d, want 1", got)
	}
	if got := ob.Gauge(obs.MMemoPeakSimBytes).Value(); got != stats.Memo.PeakSimBytes {
		t.Errorf("peak gauge = %d, stats say %d", got, stats.Memo.PeakSimBytes)
	}
	// One labeled histogram per level, one observation each.
	for k := 1; k <= 5; k++ {
		name := obs.Label(obs.MLevelSeconds, "level", strconv.Itoa(k))
		if n := ob.Histogram(name).Count(); n != 1 {
			t.Errorf("histogram %s count = %d, want 1", name, n)
		}
	}
	if n := len(sink.ByType(obs.EvOptimizeStart)); n != 1 {
		t.Errorf("optimize.start events = %d, want 1", n)
	}
	ends := sink.ByType(obs.EvOptimizeEnd)
	if len(ends) != 1 {
		t.Fatalf("optimize.end events = %d, want 1", len(ends))
	}
	if tech := ends[0].Attrs["tech"]; tech != "DP" {
		t.Errorf("optimize.end tech = %v, want DP", tech)
	}
	levels := sink.ByType(obs.EvLevel)
	if len(levels) != 5 {
		t.Fatalf("level events = %d, want 5", len(levels))
	}
	for i, e := range levels {
		if got := e.Attrs["level"]; got != i+1 {
			t.Errorf("level event %d has level %v, want %d", i, got, i+1)
		}
	}
}

func TestBudgetAbortEvent(t *testing.T) {
	sink := &obs.MemSink{}
	ob := obs.New(sink)
	q := starQuery(t, 8)
	_, _, err := Optimize(q, Options{Budget: 64 * 1024, Obs: ob})
	if !errors.Is(err, memo.ErrBudget) {
		t.Fatalf("err = %v, want ErrBudget", err)
	}
	if got := ob.Counter(obs.MBudgetAborts).Value(); got != 1 {
		t.Errorf("budget-aborts counter = %d, want 1", got)
	}
	aborts := sink.ByType(obs.EvBudgetAbort)
	if len(aborts) != 1 {
		t.Fatalf("budget.abort events = %d, want 1", len(aborts))
	}
	if got := aborts[0].Attrs["budget"]; got != int64(64*1024) {
		t.Errorf("budget.abort budget attr = %v (%T), want 65536", got, got)
	}
}
