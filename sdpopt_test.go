package sdpopt_test

import (
	"errors"
	"strings"
	"testing"

	"sdpopt"
)

func TestEndToEndPublicAPI(t *testing.T) {
	cat := sdpopt.PaperSchema()
	qs, err := sdpopt.Instances(sdpopt.WorkloadSpec{
		Cat: cat, Topology: sdpopt.StarChain, NumRelations: 12, Seed: 1,
	}, 3)
	if err != nil {
		t.Fatalf("Instances: %v", err)
	}
	for _, q := range qs {
		optimal, dpStats, err := sdpopt.OptimizeDP(q, sdpopt.DPOptions{Budget: sdpopt.DefaultBudget})
		if err != nil {
			t.Fatalf("OptimizeDP: %v", err)
		}
		heuristic, sdpStats, err := sdpopt.OptimizeSDP(q, sdpopt.SDPOptions())
		if err != nil {
			t.Fatalf("OptimizeSDP: %v", err)
		}
		idpPlan, _, err := sdpopt.OptimizeIDP(q, sdpopt.IDPDefaults())
		if err != nil {
			t.Fatalf("OptimizeIDP: %v", err)
		}
		for _, p := range []*sdpopt.Plan{optimal, heuristic, idpPlan} {
			if err := p.Validate(); err != nil {
				t.Fatalf("invalid plan: %v", err)
			}
		}
		if heuristic.Cost < optimal.Cost*(1-1e-9) || idpPlan.Cost < optimal.Cost*(1-1e-9) {
			t.Fatal("heuristic beats exhaustive DP")
		}
		if sdpStats.PlansCosted >= dpStats.PlansCosted {
			t.Error("SDP did not prune the search")
		}
		exp := sdpopt.Explain(q, heuristic)
		if !strings.Contains(exp, "cost=") || !strings.Contains(exp, "R") {
			t.Errorf("Explain output malformed:\n%s", exp)
		}
		if shape := sdpopt.PlanShape(q, heuristic); !strings.Contains(shape, "⋈") {
			t.Errorf("PlanShape = %q", shape)
		}
	}
}

func TestBudgetSurfacesErrBudget(t *testing.T) {
	cat := sdpopt.PaperSchema()
	qs, err := sdpopt.Instances(sdpopt.WorkloadSpec{
		Cat: cat, Topology: sdpopt.Star, NumRelations: 13, Seed: 2,
	}, 1)
	if err != nil {
		t.Fatal(err)
	}
	_, _, err = sdpopt.OptimizeDP(qs[0], sdpopt.DPOptions{Budget: 1 << 20})
	if !errors.Is(err, sdpopt.ErrBudget) {
		t.Fatalf("err = %v, want ErrBudget", err)
	}
}

func TestHandBuiltQuery(t *testing.T) {
	cfg := sdpopt.DefaultSchemaConfig()
	cfg.NumRelations = 5
	cat, err := sdpopt.NewSchema(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var preds []sdpopt.Pred
	for i, e := range sdpopt.StarEdges(5) {
		preds = append(preds, sdpopt.Pred{LeftRel: e.A, LeftCol: i, RightRel: e.B, RightCol: 0})
	}
	q, err := sdpopt.NewQuery(cat, []int{0, 1, 2, 3, 4}, preds, nil)
	if err != nil {
		t.Fatalf("NewQuery: %v", err)
	}
	p, _, err := sdpopt.OptimizeSDP(q, sdpopt.SDPOptions())
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestSDPVariantsViaPublicAPI(t *testing.T) {
	cat := sdpopt.PaperSchema()
	qs, err := sdpopt.Instances(sdpopt.WorkloadSpec{
		Cat: cat, Topology: sdpopt.Star, NumRelations: 10, Seed: 3,
	}, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, opts := range []sdpopt.SDPConfig{
		{Partitioning: sdpopt.RootHub, Skyline: sdpopt.Option2, Scope: sdpopt.LocalPruning},
		{Partitioning: sdpopt.ParentHub, Skyline: sdpopt.Option1, Scope: sdpopt.LocalPruning},
		{Partitioning: sdpopt.RootHub, Skyline: sdpopt.StrongSkyline, Scope: sdpopt.GlobalPruning},
	} {
		p, _, err := sdpopt.OptimizeSDP(qs[0], opts)
		if err != nil {
			t.Fatalf("%+v: %v", opts, err)
		}
		if err := p.Validate(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestSDPTraceViaPublicAPI(t *testing.T) {
	cat := sdpopt.PaperSchema()
	qs, err := sdpopt.Instances(sdpopt.WorkloadSpec{
		Cat: cat, Topology: sdpopt.Star, NumRelations: 9, Seed: 4,
	}, 1)
	if err != nil {
		t.Fatal(err)
	}
	var tr sdpopt.SDPTrace
	opts := sdpopt.SDPOptions()
	opts.Trace = &tr
	if _, _, err := sdpopt.OptimizeSDP(qs[0], opts); err != nil {
		t.Fatal(err)
	}
	if len(tr.Levels) == 0 {
		t.Error("no trace captured")
	}
}

func TestExperimentRegistry(t *testing.T) {
	exps := sdpopt.Experiments()
	if len(exps) < 15 {
		t.Fatalf("only %d experiments", len(exps))
	}
	// Run the cheapest experiment end to end through the public API.
	out, err := sdpopt.RunExperiment("fig2.2", sdpopt.ExperimentConfig{Seed: 1})
	if err != nil {
		t.Fatalf("RunExperiment: %v", err)
	}
	if !strings.Contains(out, "Figure 2.2") {
		t.Errorf("unexpected output:\n%s", out)
	}
	if _, err := sdpopt.RunExperiment("bogus", sdpopt.ExperimentConfig{}); err == nil {
		t.Error("bogus experiment id accepted")
	}
}

func TestSummarize(t *testing.T) {
	s, err := sdpopt.Summarize([]float64{1, 1.5})
	if err != nil || s.Count != 2 {
		t.Fatalf("Summarize: %+v %v", s, err)
	}
}

func TestAlternativeOptimizerFamilies(t *testing.T) {
	cat := sdpopt.PaperSchema()
	qs, err := sdpopt.Instances(sdpopt.WorkloadSpec{
		Cat: cat, Topology: sdpopt.StarChain, NumRelations: 10, Seed: 6,
	}, 1)
	if err != nil {
		t.Fatal(err)
	}
	q := qs[0]
	optimal, _, err := sdpopt.OptimizeDP(q, sdpopt.DPOptions{})
	if err != nil {
		t.Fatal(err)
	}
	type result struct {
		name string
		p    *sdpopt.Plan
	}
	var results []result
	gp, _, err := sdpopt.OptimizeGreedy(q, sdpopt.GreedyOptions{})
	if err != nil {
		t.Fatal(err)
	}
	results = append(results, result{"GOO", gp})
	ii, _, err := sdpopt.OptimizeRandomized(q, sdpopt.RandomizedOptions{Algorithm: sdpopt.IterativeImprovement, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	results = append(results, result{"II", ii})
	sa, _, err := sdpopt.OptimizeRandomized(q, sdpopt.RandomizedOptions{Algorithm: sdpopt.SimulatedAnnealing, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	results = append(results, result{"SA", sa})
	ga, _, err := sdpopt.OptimizeGenetic(q, sdpopt.GeneticOptions{Seed: 1, Generations: 30})
	if err != nil {
		t.Fatal(err)
	}
	results = append(results, result{"GEQO", ga})
	for _, r := range results {
		if err := r.p.Validate(); err != nil {
			t.Errorf("%s: %v", r.name, err)
		}
		if r.p.Cost < optimal.Cost*(1-1e-9) {
			t.Errorf("%s beat DP: %g vs %g", r.name, r.p.Cost, optimal.Cost)
		}
	}
}

func TestDOTRenderers(t *testing.T) {
	cat := sdpopt.PaperSchema()
	qs, err := sdpopt.Instances(sdpopt.WorkloadSpec{
		Cat: cat, Topology: sdpopt.Star, NumRelations: 6, Seed: 2,
	}, 1)
	if err != nil {
		t.Fatal(err)
	}
	q := qs[0]
	if dot := sdpopt.JoinGraphDOT(q); !strings.Contains(dot, "doublecircle") {
		t.Errorf("join graph DOT missing hub marker:\n%s", dot)
	}
	p, _, err := sdpopt.OptimizeSDP(q, sdpopt.SDPOptions())
	if err != nil {
		t.Fatal(err)
	}
	if dot := sdpopt.PlanDOT(q, p); !strings.Contains(dot, "digraph plan") {
		t.Errorf("plan DOT malformed:\n%s", dot)
	}
}

func TestFilteredQueryViaPublicAPI(t *testing.T) {
	cat := sdpopt.PaperSchema()
	qs, err := sdpopt.Instances(sdpopt.WorkloadSpec{
		Cat: cat, Topology: sdpopt.StarChain, NumRelations: 10,
		FilterFraction: 0.5, Seed: 8,
	}, 1)
	if err != nil {
		t.Fatal(err)
	}
	p, _, err := sdpopt.OptimizeSDP(qs[0], sdpopt.SDPOptions())
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	optimal, _, err := sdpopt.OptimizeDP(qs[0], sdpopt.DPOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if p.Cost < optimal.Cost*(1-1e-9) {
		t.Error("SDP beat DP on filtered query")
	}
}

func TestIDP2ViaPublicAPI(t *testing.T) {
	cat := sdpopt.PaperSchema()
	qs, err := sdpopt.Instances(sdpopt.WorkloadSpec{
		Cat: cat, Topology: sdpopt.Star, NumRelations: 10, Seed: 5,
	}, 1)
	if err != nil {
		t.Fatal(err)
	}
	opts := sdpopt.IDPDefaults()
	opts.K = 5
	p, _, err := sdpopt.OptimizeIDP2(qs[0], opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
}
