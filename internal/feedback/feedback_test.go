package feedback

import (
	"bytes"
	"context"
	"encoding/json"
	"strings"
	"testing"
	"time"

	"sdpopt/internal/catalog"
	"sdpopt/internal/dp"
	"sdpopt/internal/exec"
	"sdpopt/internal/obs"
	"sdpopt/internal/query"
	"sdpopt/internal/testutil"
)

// tinyCatalog mirrors the exec test fixture: small enough to execute.
func tinyCatalog(n int) *catalog.Catalog {
	return catalog.MustSynthetic(catalog.Config{
		NumRelations:    n,
		BaseRows:        20,
		Ratio:           1.3,
		ColsPerRelation: 8,
		MinDomain:       4,
		MaxDomain:       30,
		Seed:            5,
	})
}

func tinyQuery(t *testing.T, cat *catalog.Catalog, n int, edges []query.Edge) *query.Query {
	t.Helper()
	q, err := testutil.Query(cat, n, edges, nil)
	if err != nil {
		t.Fatal(err)
	}
	return q
}

// execObservations optimizes q with DP, executes the plan, and returns its
// observations.
func execObservations(t *testing.T, q *query.Query, tech string) []Observation {
	t.Helper()
	p, _, err := dp.Optimize(q, dp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	db, err := exec.Generate(q, 2, 2000)
	if err != nil {
		t.Fatal(err)
	}
	_, actuals, err := db.RunActuals(p)
	if err != nil {
		t.Fatal(err)
	}
	return PlanObservations(q, p, actuals, tech, "trace-1")
}

func TestPlanObservationsAttribution(t *testing.T) {
	cat := tinyCatalog(4)
	q := tinyQuery(t, cat, 4, query.ChainEdges(4))
	observations := execObservations(t, q, "dp")
	if len(observations) == 0 {
		t.Fatal("no observations")
	}
	rels, preds := 0, 0
	for _, o := range observations {
		switch o.Kind {
		case KindRelation:
			rels++
			if !strings.HasPrefix(o.Object, "R") || strings.Contains(o.Object, "=") {
				t.Fatalf("relation object %q not a relation name", o.Object)
			}
		case KindPredicate:
			preds++
			if !strings.Contains(o.Object, "=") {
				t.Fatalf("predicate object %q missing =", o.Object)
			}
			// The label's sides are sorted.
			parts := strings.SplitN(o.Object, "=", 2)
			if parts[0] > parts[1] {
				t.Fatalf("predicate label %q not sorted", o.Object)
			}
		default:
			t.Fatalf("unknown kind %q", o.Kind)
		}
		if o.Est < 1 || o.Actual < 0 {
			t.Fatalf("implausible observation %+v", o)
		}
		if o.Tech != "dp" || o.TraceID != "trace-1" {
			t.Fatalf("attribution lost: %+v", o)
		}
	}
	// A 4-relation chain has 4 scans and 3 joins (each with ≥1 predicate).
	if rels != 4 || preds < 3 {
		t.Fatalf("got %d relation / %d predicate observations, want 4 / ≥3", rels, preds)
	}
}

func TestQueryObjectsAndPredLabelStability(t *testing.T) {
	cat := tinyCatalog(3)
	q := tinyQuery(t, cat, 3, query.ChainEdges(3))
	objects := QueryObjects(q)
	if len(objects) != q.NumRelations()+len(q.Preds) {
		t.Fatalf("QueryObjects returned %d entries", len(objects))
	}
	for pi := range q.Preds {
		l1 := PredLabel(q, pi)
		if l1 != PredLabel(q, pi) {
			t.Fatal("PredLabel unstable")
		}
	}
}

func TestLedgerStaleness(t *testing.T) {
	l := NewLedger(LedgerOptions{MinObs: 3, StaleScore: 0.5})
	// Perfect estimates: staleness 0.
	for i := 0; i < 5; i++ {
		l.Record(Observation{Object: "R1", Kind: KindRelation, Est: 100, Actual: 100})
	}
	if s := l.Staleness("R1"); s != 0 {
		t.Fatalf("perfect estimates staleness = %g", s)
	}
	// 4× overestimates: geomean q-error 4 → score 0.75, stale.
	for i := 0; i < 5; i++ {
		l.Record(Observation{Object: "R2", Kind: KindRelation, Est: 400, Actual: 100})
	}
	if s := l.Staleness("R2"); s < 0.74 || s > 0.76 {
		t.Fatalf("4x overestimate staleness = %g, want ~0.75", s)
	}
	// Below MinObs: never stale, score 0.
	l.Record(Observation{Object: "R3", Kind: KindRelation, Est: 1000, Actual: 1})
	if s := l.Staleness("R3"); s != 0 {
		t.Fatalf("below-MinObs staleness = %g, want 0", s)
	}
	// StalenessFor is the max over the named objects.
	if s := l.StalenessFor([]string{"R1", "R2", "unknown"}); s < 0.74 {
		t.Fatalf("StalenessFor = %g", s)
	}
	if got := l.StaleCount(); got != 1 {
		t.Fatalf("StaleCount = %d, want 1 (R2)", got)
	}
	// Underestimates score symmetrically.
	for i := 0; i < 5; i++ {
		l.Record(Observation{Object: "R4", Kind: KindRelation, Est: 100, Actual: 400})
	}
	if s := l.Staleness("R4"); s < 0.74 || s > 0.76 {
		t.Fatalf("4x underestimate staleness = %g, want ~0.75", s)
	}
	// Nil safety.
	var nilL *Ledger
	nilL.Record(Observation{Object: "x"})
	if nilL.Staleness("x") != 0 || nilL.StalenessFor([]string{"x"}) != 0 || nilL.StaleCount() != 0 || nilL.Total() != 0 {
		t.Fatal("nil ledger not inert")
	}
	if d := nilL.Snapshot(nil); d == nil || len(d.Objects) != 0 {
		t.Fatal("nil ledger snapshot not empty")
	}
}

// TestDegradedStatsRaiseStaleness is the deterministic core of the CI
// feedback-smoke assertion: over Zipf-skewed data, a catalog that lost its
// statistics produces strictly worse estimates — and therefore a strictly
// higher ledger staleness — than the healthy catalog.
func TestDegradedStatsRaiseStaleness(t *testing.T) {
	base := tinyCatalog(5)
	zipfed, err := base.WithZipfSkew(1.3)
	if err != nil {
		t.Fatal(err)
	}
	// Degrade a copy: every column loses its ANALYZE statistics (the
	// -stats-health 0 limit), so estimation falls back to magic constants.
	// NDV stays — it describes the data, which stats loss does not change —
	// so both catalogs generate identical tables and only estimates differ.
	degraded, err := zipfed.WithZipfSkew(1.3) // deep copy
	if err != nil {
		t.Fatal(err)
	}
	for i := range degraded.Rels {
		for j := range degraded.Rels[i].Cols {
			degraded.Rels[i].Cols[j].StatsLost = true
		}
	}
	score := func(cat *catalog.Catalog) float64 {
		q := tinyQuery(t, cat, 5, query.StarEdges(5))
		l := NewLedger(LedgerOptions{MinObs: 1})
		l.Record(execObservations(t, q, "dp")...)
		d := l.Snapshot(nil)
		worst := 0.0
		for _, o := range d.Objects {
			if o.Staleness > worst {
				worst = o.Staleness
			}
		}
		return worst
	}
	healthy := score(zipfed)
	lost := score(degraded)
	if !(lost > healthy) {
		t.Fatalf("degraded staleness %g not above healthy %g", lost, healthy)
	}
}

func TestCorpusRoundTripAndLenientRead(t *testing.T) {
	cat := tinyCatalog(4)
	q := tinyQuery(t, cat, 4, query.StarEdges(4))
	observations := execObservations(t, q, "greedy")

	var buf bytes.Buffer
	cw := NewCorpusWriter(&buf)
	cw.Append(observations...)
	if err := cw.Flush(); err != nil {
		t.Fatal(err)
	}

	got, skipped, err := ReadCorpusLenient(bytes.NewReader(buf.Bytes()), nil)
	if err != nil {
		t.Fatal(err)
	}
	if skipped != 0 || len(got) != len(observations) {
		t.Fatalf("round trip: %d observations (%d skipped), want %d", len(got), skipped, len(observations))
	}
	for i := range got {
		if got[i] != observations[i] {
			t.Fatalf("observation %d differs: %+v vs %+v", i, got[i], observations[i])
		}
	}

	// Lenient read: corrupt tail and garbage lines cost only themselves.
	corrupt := buf.String() + "{\"object\":\"R1\",\"kind\nnot json\n" + `{"kind":"relation","est":1}` + "\n"
	var warn bytes.Buffer
	got2, skipped2, err := ReadCorpusLenient(strings.NewReader(corrupt), &warn)
	if err != nil {
		t.Fatal(err)
	}
	if len(got2) != len(observations) || skipped2 != 3 {
		t.Fatalf("lenient read: %d good, %d skipped, want %d/3", len(got2), skipped2, len(observations))
	}
	if !strings.Contains(warn.String(), "skipped") {
		t.Fatalf("no warnings: %q", warn.String())
	}
}

// TestProfileByteDeterministic pins the replay contract: the same corpus
// always reduces to a byte-identical marshaled ErrorProfile.
func TestProfileByteDeterministic(t *testing.T) {
	cat := tinyCatalog(5)
	q := tinyQuery(t, cat, 5, query.StarChainEdges(5, 2))
	observations := execObservations(t, q, "dp")

	p1 := BuildProfile(observations)
	p2 := BuildProfile(observations)
	b1, err := json.Marshal(p1)
	if err != nil {
		t.Fatal(err)
	}
	b2, err := json.Marshal(p2)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1, b2) {
		t.Fatalf("profile not byte-deterministic:\n%s\n%s", b1, b2)
	}
	// And through a corpus write/read cycle.
	var buf bytes.Buffer
	cw := NewCorpusWriter(&buf)
	cw.Append(observations...)
	if err := cw.Flush(); err != nil {
		t.Fatal(err)
	}
	replayed, _, err := ReadCorpusLenient(bytes.NewReader(buf.Bytes()), nil)
	if err != nil {
		t.Fatal(err)
	}
	b3, err := json.Marshal(BuildProfile(replayed))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1, b3) {
		t.Fatalf("corpus round trip changed the profile:\n%s\n%s", b1, b3)
	}
	// Factors default to 1 for unobserved objects.
	if p1.RelFactor("nope") != 1 || p1.PredFactor("nope") != 1 {
		t.Fatal("unobserved factor not 1")
	}
	var nilP *ErrorProfile
	if nilP.RelFactor("x") != 1 || nilP.PredFactor("x") != 1 {
		t.Fatal("nil profile factors not 1")
	}
}

func TestSamplerEndToEnd(t *testing.T) {
	cat := tinyCatalog(4)
	q := tinyQuery(t, cat, 4, query.ChainEdges(4))
	p, _, err := dp.Optimize(q, dp.Options{})
	if err != nil {
		t.Fatal(err)
	}

	ob := obs.New()
	l := NewLedger(LedgerOptions{Obs: ob})
	var buf bytes.Buffer
	cw := NewCorpusWriter(&buf)
	s, err := NewSampler(SamplerOptions{
		Ledger:   l,
		Corpus:   cw,
		Obs:      ob,
		Rate:     1,
		DedupFor: -1,
		Seed:     2,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		s.Observe(Sample{Query: q, Plan: p, Technique: "dp", TraceID: "t1"})
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	s.Close()
	s.Close() // idempotent

	if l.Total() == 0 {
		t.Fatal("sampler fed no observations")
	}
	d := l.Snapshot(s)
	if d.Sampler == nil || d.Sampler.Sampled != 3 || d.Sampler.Completed != d.Sampler.Enqueued {
		t.Fatalf("sampler counts: %+v", d.Sampler)
	}
	// The corpus was flushed by Close and round-trips.
	got, skipped, err := ReadCorpusLenient(bytes.NewReader(buf.Bytes()), nil)
	if err != nil || skipped != 0 || len(got) == 0 {
		t.Fatalf("corpus: %d observations, %d skipped, err %v", len(got), skipped, err)
	}
	// Metrics reached the registry.
	var om bytes.Buffer
	if err := ob.Registry.WritePrometheus(&om); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"sdpopt_feedback_observations_total", "sdpopt_feedback_sampled_total"} {
		if !strings.Contains(om.String(), want) {
			t.Errorf("metrics missing %s", want)
		}
	}
	// Render paths don't explode.
	if out := d.Render(); !strings.Contains(out, "cardinality feedback") {
		t.Fatalf("render: %q", out)
	}

	// Eligibility gates: an oversized query is skipped, not executed.
	l2 := NewLedger(LedgerOptions{})
	s2, err := NewSampler(SamplerOptions{Ledger: l2, Rate: 1, MaxRels: 2, DedupFor: -1})
	if err != nil {
		t.Fatal(err)
	}
	s2.Observe(Sample{Query: q, Plan: p})
	s2.Close()
	if l2.Total() != 0 || s2.skipped.Load() != 1 {
		t.Fatalf("oversized query not skipped: total=%d skipped=%d", l2.Total(), s2.skipped.Load())
	}

	// Nil safety.
	var nilS *Sampler
	nilS.Observe(Sample{})
	nilS.Close()
	if err := nilS.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
}

func TestDumpJSONRoundTrip(t *testing.T) {
	l := NewLedger(LedgerOptions{MinObs: 1})
	for i := 0; i < 4; i++ {
		l.Record(Observation{Object: "R1", Kind: KindRelation, Est: 300, Actual: 100})
	}
	d := l.Snapshot(nil)
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	if err := enc.Encode(d); err != nil {
		t.Fatal(err)
	}
	got, err := ReadDump(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Objects) != 1 || got.Objects[0].Object != "R1" || !got.Objects[0].Stale {
		t.Fatalf("dump round trip: %+v", got.Objects)
	}
	if got.Objects[0].QErrP50 != 3 || got.Objects[0].Over != 4 {
		t.Fatalf("aggregates: %+v", got.Objects[0])
	}
	// NaN can never reach the document: encoding already proved it (NaN
	// would have failed Encode), but check the empty-window path too.
	empty := NewLedger(LedgerOptions{})
	if err := json.NewEncoder(&buf).Encode(empty.Snapshot(nil)); err != nil {
		t.Fatalf("empty snapshot not encodable: %v", err)
	}
}
