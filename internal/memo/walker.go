package memo

import (
	mathbits "math/bits"

	"sdpopt/internal/bits"
)

// levelIndex is one leaf level's adjacency index: membership bitmaps over
// the level's class sequence numbers. byRel[r] has bit s set when the
// class with Seq s contains base relation r (trailing words that were
// never set are simply absent and read as zero); alive has bit s set while
// that class is in the memo. From these, a Walker derives a left class's
// exact candidate set with word-parallel boolean algebra instead of any
// per-class test:
//
//	connected  = ⋃ { byRel[r] : r ∈ a.Nbrs }   (shares a joinable edge)
//	overlapped = ⋃ { byRel[r] : r ∈ a.Set  }   (shares a base relation)
//	candidates = connected &^ overlapped & alive
//
// Levels below the one being enumerated are frozen (classes are only
// created at the current level, and pruning hooks run between levels), so
// concurrent Gather calls from parallel workers read these bitmaps without
// synchronization.
type levelIndex struct {
	byRel [][]uint64
	alive []uint64
}

// add indexes a newly created class: seq must be the level's next sequence
// number (bitmaps grow by at most one word).
func (ix *levelIndex) add(seq int, set bits.Set) {
	word, bit := seq>>6, uint(seq&63)
	if word >= len(ix.alive) {
		ix.alive = append(ix.alive, 0)
	}
	ix.alive[word] |= 1 << bit
	if max := set.Max(); max >= len(ix.byRel) {
		ix.byRel = append(ix.byRel, make([][]uint64, max+1-len(ix.byRel))...)
	}
	for it := set.Iter(); ; {
		r, ok := it.Next()
		if !ok {
			break
		}
		for word >= len(ix.byRel[r]) {
			ix.byRel[r] = append(ix.byRel[r], 0)
		}
		ix.byRel[r][word] |= 1 << bit
	}
}

// remove clears a pruned class's alive bit; its membership bits stay (they
// are masked out by alive on every walk).
func (ix *levelIndex) remove(seq int) {
	ix.alive[seq>>6] &^= 1 << uint(seq&63)
}

// orRel ORs relation r's membership bitmap into dst (missing trailing
// words of the bitmap read as zero; len(src) ≤ len(dst) by construction).
func (ix *levelIndex) orRel(dst []uint64, r int) {
	if r < 0 || r >= len(ix.byRel) {
		return
	}
	for i, w := range ix.byRel[r] {
		dst[i] |= w
	}
}

// Walker gathers a left class's join candidates from one level's adjacency
// index. It is the indexed replacement for scanning the whole level and
// filtering each pair with Disjoint and Connected: the per-relation
// bitmaps of r ∈ a.Nbrs are OR-ed into a connectivity mask, the bitmaps of
// r ∈ a.Set into an overlap mask, and candidates = connected &^ overlapped
// & alive — exactly the classes the filtering scan would keep, computed 64
// classes per machine word. Iterating the mask's set bits yields
// candidates in ascending Seq, which is creation order, which is the order
// the naive loop visits them in — so tie-breaks, and therefore chosen
// plans, are bit-for-bit identical to the reference scan's.
//
// A Walker reuses its scratch across calls and is not safe for concurrent
// use; the parallel engine gives each worker its own.
type Walker struct {
	conn []uint64
	over []uint64
	out  []*Class
}

// growMasks zero-fills the walker's two scratch masks to the given word
// count, growing them if needed.
func (w *Walker) growMasks(words int) {
	if cap(w.conn) < words {
		w.conn = make([]uint64, words)
		w.over = make([]uint64, words)
	}
	w.conn = w.conn[:words]
	w.over = w.over[:words]
	for i := range w.conn {
		w.conn[i] = 0
		w.over[i] = 0
	}
}

// Gather returns the alive classes of the given level that are connected
// to and disjoint from a and whose Seq is at least minSeq, in creation
// order. minSeq implements the same-level unordered-pair rule: passing
// a.Seq()+1 when left and right draw from the same level visits each
// unordered pair exactly once, matching the naive loop's right[ai+1:]
// slice (Level preserves creation order, so "after a in the alive slice"
// is exactly "alive with larger Seq"). The returned slice is the walker's
// scratch, valid until the next Gather.
func (w *Walker) Gather(m *Memo, a *Class, level, minSeq int) []*Class {
	w.out = w.out[:0]
	if level < 0 || level >= len(m.byLevel) {
		return w.out
	}
	classes := m.byLevel[level]
	ix := &m.idx[level]
	words := (len(classes) + 63) >> 6
	w.growMasks(words)
	for it := a.Nbrs.Iter(); ; {
		r, ok := it.Next()
		if !ok {
			break
		}
		ix.orRel(w.conn, r)
	}
	for it := a.Set.Iter(); ; {
		r, ok := it.Next()
		if !ok {
			break
		}
		ix.orRel(w.over, r)
	}
	if minSeq < 0 {
		minSeq = 0
	}
	for wi := minSeq >> 6; wi < words; wi++ {
		word := w.conn[wi] &^ w.over[wi] & ix.alive[wi]
		if wi == minSeq>>6 {
			word &= ^uint64(0) << uint(minSeq&63)
		}
		for word != 0 {
			s := wi<<6 + mathbits.TrailingZeros64(word)
			word &= word - 1
			w.out = append(w.out, classes[s])
		}
	}
	return w.out
}
