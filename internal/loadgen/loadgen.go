// Package loadgen is an open-loop load generator for the optimizer
// service: it fires /optimize requests at a fixed arrival rate (constant
// or Poisson) regardless of how fast responses come back, which is the
// only honest way to measure a service's latency under load — a
// closed-loop driver slows down exactly when the server does, hiding the
// queueing delay users would see (coordinated omission).
//
// Each run drives a configurable mixed-topology workload (the paper's
// Star / Chain / Star-Chain templates) against a base URL, measuring
// latency from each request's *scheduled* arrival time, and reports
// percentiles, shed rate, per-route counts, and the mean plan-quality
// ratio ρ of served plans against locally computed SDP reference plans.
// `sdplab load` wraps a single run; `sdplab bench` runs a routed-vs-
// always-SDP pair and records both in the BENCH report's "load" section.
package loadgen

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math"
	"math/rand"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"sdpopt/internal/catalog"
	"sdpopt/internal/core"
	"sdpopt/internal/query"
	"sdpopt/internal/server"
	"sdpopt/internal/workload"
)

// MixEntry is one workload component: a topology template at a fixed
// relation count, drawn with the given weight.
type MixEntry struct {
	Topology workload.Topology
	Rels     int
	Weight   int
}

// String renders the entry in ParseMix's format, e.g. "star-chain-15:2".
func (m MixEntry) String() string {
	return fmt.Sprintf("%s-%d:%d", strings.ToLower(m.Topology.String()), m.Rels, m.Weight)
}

// DefaultMix is the mixed Star/Chain/Star-Chain workload the bench
// artifact uses: small stars that SDP serves in a millisecond, mid
// chains the router fast-paths to greedy, mid stars worth full SDP, and
// a Star-Chain-15 tail whose 20ms+ SDP cost dominates the unrouted p99.
func DefaultMix() []MixEntry {
	return []MixEntry{
		{Topology: workload.Star, Rels: 7, Weight: 3},
		{Topology: workload.Star, Rels: 12, Weight: 2},
		{Topology: workload.Chain, Rels: 12, Weight: 3},
		{Topology: workload.StarChain, Rels: 15, Weight: 2},
	}
}

// ParseMix parses a comma-separated mix spec like
// "star-7:3,chain-12:3,star-chain-15:2" (topology-rels:weight).
func ParseMix(s string) ([]MixEntry, error) {
	var out []MixEntry
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		spec, weight := part, 1
		if i := strings.LastIndex(part, ":"); i >= 0 {
			w, err := strconv.Atoi(part[i+1:])
			if err != nil || w < 1 {
				return nil, fmt.Errorf("loadgen: bad weight in %q", part)
			}
			spec, weight = part[:i], w
		}
		i := strings.LastIndex(spec, "-")
		if i < 0 {
			return nil, fmt.Errorf("loadgen: %q is not topology-rels", spec)
		}
		rels, err := strconv.Atoi(spec[i+1:])
		if err != nil || rels < 2 {
			return nil, fmt.Errorf("loadgen: bad relation count in %q", spec)
		}
		var topo workload.Topology
		switch strings.ToLower(spec[:i]) {
		case "chain":
			topo = workload.Chain
		case "star":
			topo = workload.Star
		case "cycle":
			topo = workload.Cycle
		case "clique":
			topo = workload.Clique
		case "star-chain", "starchain":
			topo = workload.StarChain
		default:
			return nil, fmt.Errorf("loadgen: unknown topology %q (chain, star, cycle, clique, star-chain)", spec[:i])
		}
		out = append(out, MixEntry{Topology: topo, Rels: rels, Weight: weight})
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("loadgen: empty mix %q", s)
	}
	return out, nil
}

// MixString renders a mix in ParseMix's format.
func MixString(mix []MixEntry) string {
	parts := make([]string, len(mix))
	for i, m := range mix {
		parts[i] = m.String()
	}
	return strings.Join(parts, ",")
}

// Options configures one load run. The zero value is not runnable: URL is
// required; everything else defaults.
type Options struct {
	// URL is the service base URL, e.g. "http://127.0.0.1:8080".
	URL string
	// QPS is the arrival rate. Default 25.
	QPS float64
	// Duration is the measured generation window. Default 6s.
	Duration time.Duration
	// Warmup prepends an unmeasured window at the same arrival rate:
	// its requests drive the server (cache fills, shadow references,
	// router profile learning) but are excluded from the report's
	// percentiles and counts, so the numbers describe steady state
	// rather than cold start. Default 2s; negative disables.
	Warmup time.Duration
	// Arrivals is "poisson" (default) or "constant".
	Arrivals string
	// Technique is the request's technique field. Default "auto".
	Technique string
	// TimeoutMS is each request's deadline in ms — the router's routing
	// signal. Default 100. Negative sends no deadline.
	TimeoutMS int64
	// Mix is the workload composition. Default DefaultMix.
	Mix []MixEntry
	// PoolSize is the number of distinct instances pre-generated per mix
	// entry; arrivals draw from the pool. Default 6.
	PoolSize int
	// Seed drives query generation and arrival sampling.
	Seed int64
	// AllowCache lets requests use the server's plan cache. Off by
	// default so every request measures real optimization latency.
	AllowCache bool
	// Cat is the catalog queries are generated against. It must match
	// the server's catalog (query-JSON relation indexes are
	// catalog-relative). Default: the paper's base schema.
	Cat *catalog.Catalog
}

func (o Options) withDefaults() Options {
	if o.QPS <= 0 {
		o.QPS = 25
	}
	if o.Duration <= 0 {
		o.Duration = 6 * time.Second
	}
	if o.Warmup == 0 {
		o.Warmup = 2 * time.Second
	}
	if o.Warmup < 0 {
		o.Warmup = 0
	}
	if o.Arrivals == "" {
		o.Arrivals = "poisson"
	}
	if o.Technique == "" {
		o.Technique = "auto"
	}
	if o.TimeoutMS == 0 {
		o.TimeoutMS = 100
	}
	if len(o.Mix) == 0 {
		o.Mix = DefaultMix()
	}
	if o.PoolSize <= 0 {
		o.PoolSize = 6
	}
	if o.Cat == nil {
		o.Cat = workload.PaperSchema()
	}
	return o
}

// Report is one load run's outcome — the "load" section entries of the
// BENCH report and the output of `sdplab load -json`.
type Report struct {
	Technique       string  `json:"technique"`
	QPS             float64 `json:"qps"`
	DurationSeconds float64 `json:"duration_seconds"`
	Arrivals        string  `json:"arrivals"`
	Mix             string  `json:"mix"`
	// WarmupSeconds and WarmupRequests describe the unmeasured lead-in;
	// everything below counts measured-window requests only.
	WarmupSeconds  float64 `json:"warmup_seconds,omitempty"`
	WarmupRequests int     `json:"warmup_requests,omitempty"`
	Requests       int     `json:"requests"`
	OK             int     `json:"ok"`
	Shed           int     `json:"shed"`
	Errors5xx      int     `json:"errors_5xx"`
	OtherErrors    int     `json:"other_errors"`
	// ShedRate is Shed / Requests.
	ShedRate float64 `json:"shed_rate"`
	// Latency percentiles over successful requests, measured from each
	// request's scheduled (not actual) send time, in ms.
	P50MS  float64 `json:"p50_ms"`
	P99MS  float64 `json:"p99_ms"`
	P999MS float64 `json:"p999_ms"`
	// MeanRho is the geometric-mean cost ratio of served plans to
	// locally computed SDP reference plans for the same queries — the
	// plan quality the routing traded for latency (1.0 = reference
	// quality).
	MeanRho float64 `json:"mean_rho"`
	// Routes counts successful requests by the technique that served
	// them; Reasons by the router's route_reason.
	Routes  map[string]int64 `json:"routes"`
	Reasons map[string]int64 `json:"reasons"`
}

// Render formats the report for terminals.
func (r *Report) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "load: technique=%s %s arrivals at %.4g qps for %.4gs over %s\n",
		r.Technique, r.Arrivals, r.QPS, r.DurationSeconds, r.Mix)
	if r.WarmupRequests > 0 {
		fmt.Fprintf(&b, "  warmup   %.4gs, %d requests (unmeasured)\n", r.WarmupSeconds, r.WarmupRequests)
	}
	fmt.Fprintf(&b, "  requests %d: %d ok, %d shed (%.2f%%), %d 5xx, %d other errors\n",
		r.Requests, r.OK, r.Shed, 100*r.ShedRate, r.Errors5xx, r.OtherErrors)
	fmt.Fprintf(&b, "  latency  p50 %.3gms  p99 %.3gms  p99.9 %.3gms\n", r.P50MS, r.P99MS, r.P999MS)
	fmt.Fprintf(&b, "  quality  mean rho %.4f vs local SDP reference\n", r.MeanRho)
	routes := make([]string, 0, len(r.Routes))
	for tech := range r.Routes {
		routes = append(routes, tech)
	}
	sort.Strings(routes)
	for _, tech := range routes {
		fmt.Fprintf(&b, "  route    %-8s %d\n", tech, r.Routes[tech])
	}
	reasons := make([]string, 0, len(r.Reasons))
	for reason := range r.Reasons {
		reasons = append(reasons, reason)
	}
	sort.Strings(reasons)
	for _, reason := range reasons {
		fmt.Fprintf(&b, "  reason   %-24s %d\n", reason, r.Reasons[reason])
	}
	return b.String()
}

// poolEntry is one pre-generated query: its request serialization and the
// local SDP reference cost served plans are ratioed against.
type poolEntry struct {
	spec    *server.QuerySpec
	refCost float64
}

// buildPool instantiates PoolSize queries per mix entry and computes
// each one's SDP reference plan locally.
func buildPool(o Options) ([]poolEntry, []int, error) {
	var pool []poolEntry
	var weights []int
	for i, m := range o.Mix {
		qs, err := workload.Instances(workload.Spec{
			Cat:          o.Cat,
			Topology:     m.Topology,
			NumRelations: m.Rels,
			Seed:         o.Seed + int64(i)*101,
		}, o.PoolSize)
		if err != nil {
			return nil, nil, fmt.Errorf("loadgen: %s: %w", m, err)
		}
		for _, q := range qs {
			ref, _, err := core.Optimize(q, core.DefaultOptions())
			if err != nil {
				return nil, nil, fmt.Errorf("loadgen: %s reference plan: %w", m, err)
			}
			pool = append(pool, poolEntry{spec: toSpec(q), refCost: ref.Cost})
			weights = append(weights, m.Weight)
		}
	}
	return pool, weights, nil
}

// toSpec serializes a generated query into the request's query-JSON shape.
func toSpec(q *query.Query) *server.QuerySpec {
	spec := &server.QuerySpec{Rels: append([]int(nil), q.Rels...)}
	for _, p := range q.Preds {
		spec.Preds = append(spec.Preds, server.PredSpec{
			LeftRel: p.LeftRel, LeftCol: p.LeftCol, RightRel: p.RightRel, RightCol: p.RightCol,
		})
	}
	for _, f := range q.Filters {
		spec.Filters = append(spec.Filters, server.FilterSpec{Rel: f.Rel, Col: f.Col, Bound: f.Bound})
	}
	if q.OrderBy != nil {
		spec.OrderBy = &server.OrderSpec{Rel: q.OrderBy.Rel, Col: q.OrderBy.Col}
	}
	return spec
}

// sample is one completed request. warm marks samples scheduled inside
// the measured window; warmup samples drive the server but are excluded
// from the report.
type sample struct {
	lat    time.Duration
	code   int
	tech   string
	reason string
	rho    float64
	warm   bool
}

// Run drives one open-loop load run and aggregates the report. The
// arrival schedule is computed up front from (QPS, Arrivals, Seed) in
// absolute time; each request fires at its scheduled instant in its own
// goroutine whether or not earlier ones have returned, and its latency
// is measured from the scheduled instant so queueing delay under
// overload is charged to the server, not silently absorbed by the
// generator.
func Run(ctx context.Context, opts Options) (*Report, error) {
	o := opts.withDefaults()
	if o.URL == "" {
		return nil, fmt.Errorf("loadgen: no target URL")
	}
	if o.Arrivals != "poisson" && o.Arrivals != "constant" {
		return nil, fmt.Errorf("loadgen: arrivals %q (want poisson or constant)", o.Arrivals)
	}
	pool, weights, err := buildPool(o)
	if err != nil {
		return nil, err
	}
	total := 0
	for _, w := range weights {
		total += w
	}
	rng := rand.New(rand.NewSource(o.Seed*2654435761 + 97))
	pick := func() poolEntry {
		n := rng.Intn(total)
		for i, w := range weights {
			if n -= w; n < 0 {
				return pool[i]
			}
		}
		return pool[len(pool)-1]
	}

	clientTimeout := 30 * time.Second
	if o.TimeoutMS > 0 {
		if t := 10*time.Duration(o.TimeoutMS)*time.Millisecond + 2*time.Second; t < clientTimeout {
			clientTimeout = t
		}
	}
	client := &http.Client{Timeout: clientTimeout}

	var (
		wg      sync.WaitGroup
		mu      sync.Mutex
		samples []sample
	)
	start := time.Now()
	var next time.Duration
	n := 0
	for next < o.Warmup+o.Duration {
		if err := ctx.Err(); err != nil {
			break
		}
		entry := pick()
		warm := next >= o.Warmup
		sched := start.Add(next)
		if d := time.Until(sched); d > 0 {
			select {
			case <-time.After(d):
			case <-ctx.Done():
			}
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			s := doRequest(client, o, entry, sched)
			s.warm = warm
			mu.Lock()
			samples = append(samples, s)
			mu.Unlock()
		}()
		n++
		if o.Arrivals == "constant" {
			next = time.Duration(float64(n) * float64(time.Second) / o.QPS)
		} else {
			next += time.Duration(rng.ExpFloat64() / o.QPS * float64(time.Second))
		}
	}
	wg.Wait()
	return aggregate(o, samples), nil
}

// doRequest fires one /optimize call and classifies its outcome. Latency
// runs from the scheduled arrival, not the actual send.
func doRequest(client *http.Client, o Options, entry poolEntry, sched time.Time) sample {
	req := server.OptimizeRequest{
		Query:     entry.spec,
		Technique: o.Technique,
		NoCache:   !o.AllowCache,
	}
	if o.TimeoutMS > 0 {
		req.TimeoutMS = o.TimeoutMS
	}
	body, err := json.Marshal(&req)
	if err != nil {
		return sample{code: -1}
	}
	resp, err := client.Post(o.URL+"/optimize", "application/json", bytes.NewReader(body))
	if err != nil {
		return sample{lat: time.Since(sched), code: -1}
	}
	defer resp.Body.Close()
	var or server.OptimizeResponse
	dec := json.NewDecoder(resp.Body)
	s := sample{lat: time.Since(sched), code: resp.StatusCode}
	if err := dec.Decode(&or); err != nil {
		return s
	}
	s.tech, s.reason = or.Technique, or.RouteReason
	if resp.StatusCode == http.StatusOK && or.Cost > 0 && entry.refCost > 0 {
		s.rho = or.Cost / entry.refCost
	}
	return s
}

// aggregate folds samples into the report.
func aggregate(o Options, samples []sample) *Report {
	r := &Report{
		Technique:       o.Technique,
		QPS:             o.QPS,
		DurationSeconds: o.Duration.Seconds(),
		Arrivals:        o.Arrivals,
		Mix:             MixString(o.Mix),
		WarmupSeconds:   o.Warmup.Seconds(),
		Routes:          map[string]int64{},
		Reasons:         map[string]int64{},
	}
	var lats []time.Duration
	var logSum float64
	var logN int
	for _, s := range samples {
		if !s.warm {
			r.WarmupRequests++
			continue
		}
		r.Requests++
		switch {
		case s.code == http.StatusOK:
			r.OK++
			lats = append(lats, s.lat)
			if s.tech != "" {
				r.Routes[s.tech]++
			}
			if s.reason != "" {
				r.Reasons[s.reason]++
			}
			if s.rho > 0 {
				logSum += math.Log(s.rho)
				logN++
			}
		case s.code == http.StatusTooManyRequests:
			r.Shed++
		case s.code >= 500:
			r.Errors5xx++
		default:
			r.OtherErrors++
		}
	}
	if r.Requests > 0 {
		r.ShedRate = float64(r.Shed) / float64(r.Requests)
	}
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	r.P50MS = pctlMS(lats, 0.50)
	r.P99MS = pctlMS(lats, 0.99)
	r.P999MS = pctlMS(lats, 0.999)
	if logN > 0 {
		r.MeanRho = math.Exp(logSum / float64(logN))
	}
	return r
}

// pctlMS is the nearest-rank percentile of an ascending latency slice,
// in milliseconds.
func pctlMS(sorted []time.Duration, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q * float64(len(sorted)))
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return float64(sorted[i]) / float64(time.Millisecond)
}
