package harness

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"strings"
	"time"

	"sdpopt/internal/bits"
	"sdpopt/internal/catalog"
	"sdpopt/internal/core"
	"sdpopt/internal/cost"
	"sdpopt/internal/dp"
	"sdpopt/internal/exec"
	"sdpopt/internal/genetic"
	"sdpopt/internal/greedy"
	"sdpopt/internal/idp"
	"sdpopt/internal/memo"
	"sdpopt/internal/plan"
	"sdpopt/internal/query"
	"sdpopt/internal/randomized"
	"sdpopt/internal/skyline"
	"sdpopt/internal/tpch"
	"sdpopt/internal/workload"
)

// starChainBatch runs the four main techniques over an n-relation
// Star-Chain workload, with DP as reference when refDP is set (otherwise
// SDP, the paper's convention when DP is infeasible).
func (c Config) starChainBatch(n, defInstances int, refDP, ordered bool) (*Batch, error) {
	spec := c.schema()
	spec.Topology = workload.StarChain
	spec.NumRelations = n
	spec.Ordered = ordered
	qs, err := workload.Instances(*spec, c.instances(defInstances))
	if err != nil {
		return nil, err
	}
	budget := c.budget()
	ew := c.enumWorkers()
	techs := []Technique{TechIDP(7, budget), TechIDP(4, budget), TechSDP(budget, ew)}
	ref := "SDP"
	if refDP {
		techs = append([]Technique{TechDP(budget, ew)}, techs...)
		ref = "DP"
	}
	graph := fmt.Sprintf("Star-Chain-%d", n)
	if ordered {
		graph = "Ord-" + graph
	}
	b, err := RunBatchWorkers(graph, qs, c.cached(spec.Cat, techs), ref, c.workers())
	if err != nil {
		return nil, err
	}
	if !refDP {
		b.AddInfeasible("DP")
	}
	return b, nil
}

func (c Config) starBatch(n, defInstances int, refDP, ordered bool) (*Batch, error) {
	spec := c.schema()
	spec.Topology = workload.Star
	spec.NumRelations = n
	spec.Ordered = ordered
	qs, err := workload.Instances(*spec, c.instances(defInstances))
	if err != nil {
		return nil, err
	}
	budget := c.budget()
	ew := c.enumWorkers()
	techs := []Technique{TechIDP(7, budget), TechIDP(4, budget), TechSDP(budget, ew)}
	ref := "SDP"
	if refDP {
		techs = append([]Technique{TechDP(budget, ew)}, techs...)
		ref = "DP"
	}
	graph := fmt.Sprintf("Star-%d", n)
	if ordered {
		graph = "Ord-" + graph
	}
	b, err := RunBatchWorkers(graph, qs, c.cached(spec.Cat, techs), ref, c.workers())
	if err != nil {
		return nil, err
	}
	if !refDP {
		b.AddInfeasible("DP")
	}
	return b, nil
}

// Table11 reproduces Table 1.1: plan quality of DP, IDP and SDP on
// Star-Chain-15.
func Table11(c Config) (string, error) {
	b, err := c.starChainBatch(15, 20, true, false)
	if err != nil {
		return "", err
	}
	return "Table 1.1: Plan Quality (Star-Chain-15)\n" + b.QualityTable(), nil
}

// Table12 reproduces Table 1.2: optimization overheads on Star-Chain-15.
func Table12(c Config) (string, error) {
	b, err := c.starChainBatch(15, 20, true, false)
	if err != nil {
		return "", err
	}
	return "Table 1.2: Optimization Overheads (Star-Chain-15)\n" + b.OverheadTable(), nil
}

// Figure12 reproduces Figure 1.2: the plan-quality-versus-effort tradeoff
// of DP, IDP(4), IDP(7) and SDP on Star-Chain-15, emitted as plot series
// (one line per technique: time, plans costed, ρ).
func Figure12(c Config) (string, error) {
	b, err := c.starChainBatch(15, 20, true, false)
	if err != nil {
		return "", err
	}
	var sb strings.Builder
	sb.WriteString("Figure 1.2: Plan Quality (rho) vs Optimization Effort (Star-Chain-15)\n")
	fmt.Fprintf(&sb, "%-8s %14s %14s %8s\n", "Tech", "MeanTime", "PlansCosted", "rho")
	for _, o := range b.Outcomes {
		if !o.Feasible {
			continue
		}
		fmt.Fprintf(&sb, "%-8s %14v %14.0f %8.4f\n", o.Name, o.MeanTime.Round(time.Microsecond), o.MeanCosted, o.Summary.Rho)
	}
	sb.WriteString("# knee-of-the-tradeoff: SDP should sit at low effort AND low rho\n")
	return sb.String(), nil
}

// Table13 reproduces Table 1.3: plan quality on the scaled Star-Chain-23,
// with SDP as the reference since DP is infeasible.
func Table13(c Config) (string, error) {
	b, err := c.starChainBatch(23, 10, false, false)
	if err != nil {
		return "", err
	}
	return "Table 1.3: Scaled Join Graph Plan Quality (Star-Chain-23, SDP as reference)\n" + b.QualityTable(), nil
}

// Table14 reproduces Table 1.4: overheads on Star-Chain-23.
func Table14(c Config) (string, error) {
	b, err := c.starChainBatch(23, 10, false, false)
	if err != nil {
		return "", err
	}
	return "Table 1.4: Scaled Join Graph Overheads (Star-Chain-23)\n" + b.OverheadTable(), nil
}

// Table21 reproduces Table 2.1: exhaustive DP's overheads on pure chains
// versus pure stars as the relation count grows — the observation that
// motivates localized pruning. Stars beyond the feasibility cliff are
// reported with "*".
func Table21(c Config) (string, error) {
	spec := c.schema()
	budget := c.budget()
	var sb strings.Builder
	sb.WriteString("Table 2.1: DP Overheads, Chain vs Star\n")
	fmt.Fprintf(&sb, "%5s %14s %12s %14s %12s\n", "Rels", "ChainTime", "ChainMB", "StarTime", "StarMB")
	starDead := false
	for _, n := range []int{4, 8, 12, 16, 20, 24, 28} {
		chSpec := *spec
		chSpec.Topology = workload.Chain
		chSpec.NumRelations = n
		qc, err := workload.One(chSpec)
		if err != nil {
			return "", err
		}
		_, sc, err := dp.Optimize(qc, dp.Options{Budget: budget})
		if err != nil {
			return "", fmt.Errorf("chain-%d: %w", n, err)
		}
		starCell := fmt.Sprintf("%14s %12s", "-", "-")
		if !starDead {
			stSpec := *spec
			stSpec.Topology = workload.Star
			stSpec.NumRelations = n
			qsr, err := workload.One(stSpec)
			if err != nil {
				return "", err
			}
			_, ss, err := dp.Optimize(qsr, dp.Options{Budget: budget})
			switch {
			case errors.Is(err, memo.ErrBudget):
				starDead = true
				starCell = fmt.Sprintf("%14s %12s", "*", "*")
			case err != nil:
				return "", fmt.Errorf("star-%d: %w", n, err)
			default:
				starCell = fmt.Sprintf("%14v %12.2f", ss.Elapsed.Round(time.Microsecond), ss.Memo.PeakMB())
			}
		}
		fmt.Fprintf(&sb, "%5d %14v %12.2f %s\n", n, sc.Elapsed.Round(time.Microsecond), sc.Memo.PeakMB(), starCell)
	}
	return sb.String(), nil
}

// Table22 reproduces Table 2.2: the worked multi-way skyline pruning
// example on the Figure 2.1 join graph — the level-2 PruneGroup partition
// of root hub 1, each member's [R,C,S] feature vector, its membership in
// the RC, CS and RS skylines, and the pruning verdict.
func Table22(c Config) (string, error) {
	tr, _, err := c.tracedExample9()
	if err != nil {
		return "", err
	}
	var lvl *core.LevelTrace
	for i := range tr.Levels {
		// The paper's worked example shows a partition of three-relation
		// JCRs (level 3); fall back to the first level with the hub-1
		// partition.
		if _, ok := tr.Levels[i].Partitions["hub:1"]; ok && (lvl == nil || tr.Levels[i].Level == 3) {
			lvl = &tr.Levels[i]
		}
	}
	if lvl == nil {
		return "", fmt.Errorf("harness: no hub-1 partition traced")
	}
	members := lvl.Partitions["hub:1"]
	pts := make([][]float64, len(members))
	for i, s := range members {
		fv := lvl.Features[s]
		pts[i] = []float64{fv.Rows, fv.Cost, fv.Sel}
	}
	masks := map[string][]bool{}
	for _, pr := range []struct {
		name string
		a, b int
	}{{"RC", 0, 1}, {"CS", 1, 2}, {"RS", 0, 2}} {
		proj := make([][]float64, len(pts))
		for i, p := range pts {
			proj[i] = []float64{p[pr.a], p[pr.b]}
		}
		masks[pr.name] = skyline.TwoD(proj)
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "Table 2.2: Multi-way Skyline Pruning (level-%d PruneGroup partition on root hub 1)\n", lvl.Level)
	fmt.Fprintf(&sb, "%-14s %34s  %2s %2s %2s  %s\n", "JCR", "[Rows, Cost, Sel]", "RC", "CS", "RS", "verdict")
	yn := func(ok bool) string {
		if ok {
			return "Y"
		}
		return "-"
	}
	for i, s := range members {
		fv := lvl.Features[s]
		verdict := "pruned"
		if masks["RC"][i] || masks["CS"][i] || masks["RS"][i] {
			verdict = "survives"
		}
		fmt.Fprintf(&sb, "%-14s [%12.0f, %12.2f, %8.2e]  %2s %2s %2s  %s\n",
			s, fv.Rows, fv.Cost, fv.Sel, yn(masks["RC"][i]), yn(masks["CS"][i]), yn(masks["RS"][i]), verdict)
	}
	return sb.String(), nil
}

func (c Config) tracedExample9() (*core.Trace, dp.Stats, error) {
	q, err := workload.Example9(c.schema().Cat)
	if err != nil {
		return nil, dp.Stats{}, err
	}
	var tr core.Trace
	opts := core.DefaultOptions()
	opts.Trace = &tr
	opts.Budget = c.budget()
	_, stats, err := core.Optimize(q, opts)
	return &tr, stats, err
}

// Table23 reproduces Table 2.3: skyline Option 1 (full RCS skyline) versus
// Option 2 (disjunctive pairwise) — JCRs processed and plan quality ρ —
// over instances of the Figure 2.1 example topology, plus a star workload
// whose partitions are large enough for the two options to separate.
func Table23(c Config) (string, error) {
	budget := c.budget()
	opt1 := core.DefaultOptions()
	opt1.Skyline = core.Option1

	var sb strings.Builder
	sb.WriteString("Table 2.3: Performance of Skyline Options\n")
	for _, wl := range []struct {
		label string
		topo  workload.Topology
		n     int
		edges []query.Edge
		inst  int
	}{
		{"Example-9", workload.Custom, 9, query.Example9Edges(), c.instances(15)},
		{"Star-13", workload.Star, 13, nil, c.instances(6)},
	} {
		spec := c.schema()
		spec.Topology = wl.topo
		spec.NumRelations = wl.n
		spec.Edges = wl.edges
		qs, err := workload.Instances(*spec, wl.inst)
		if err != nil {
			return "", err
		}
		b, err := RunBatch(wl.label, qs, []Technique{
			TechDP(budget),
			TechSDPVariant("SDP/Opt1", opt1, budget),
			TechSDPVariant("SDP/Opt2", core.DefaultOptions(), budget),
		}, "DP")
		if err != nil {
			return "", err
		}
		fmt.Fprintf(&sb, "%-10s %-10s %16s %10s\n", "Graph", "Option", "JCRsProcessed", "rho")
		for _, o := range b.Outcomes {
			if o.Name == "DP" {
				continue
			}
			fmt.Fprintf(&sb, "%-10s %-10s %16.0f %10.4f\n", wl.label, o.Name, meanClasses(qs, o.Name, budget), o.Summary.Rho)
		}
	}
	return sb.String(), nil
}

// meanClasses reruns the named SDP option to report classes created (the
// "JCRs processed" calibration of Table 2.3).
func meanClasses(qs []*query.Query, name string, budget int64) float64 {
	opts := core.DefaultOptions()
	if strings.Contains(name, "Opt1") {
		opts.Skyline = core.Option1
	}
	opts.Budget = budget
	var total int64
	for _, q := range qs {
		_, stats, err := core.Optimize(q, opts)
		if err != nil {
			return 0
		}
		total += stats.Memo.ClassesCreated
	}
	return float64(total) / float64(len(qs))
}

// Figure22 reproduces Figures 2.2 and 2.3: a textual walkthrough of SDP's
// iterations on the example join graph — per level, the PruneGroup /
// FreeGroup split, the hub partitions, survivors and pruned JCRs — plus a
// sample JCR feature vector.
func Figure22(c Config) (string, error) {
	tr, stats, err := c.tracedExample9()
	if err != nil {
		return "", err
	}
	var sb strings.Builder
	sb.WriteString("Figure 2.2: SDP Iterations on the Example Join Graph (Figure 2.1)\n")
	for _, lvl := range tr.Levels {
		fmt.Fprintf(&sb, "Level %d: PruneGroup=%d FreeGroup=%d survivors=%d pruned=%d\n",
			lvl.Level, len(lvl.PruneGroup), len(lvl.FreeGroup), len(lvl.Survivors), len(lvl.Pruned))
		labels := make([]string, 0, len(lvl.Partitions))
		for l := range lvl.Partitions {
			labels = append(labels, l)
		}
		sort.Strings(labels)
		for _, l := range labels {
			fmt.Fprintf(&sb, "  partition %-8s %v\n", l, lvl.Partitions[l])
		}
		if len(lvl.Pruned) > 0 {
			fmt.Fprintf(&sb, "  pruned: %v\n", lvl.Pruned)
		}
	}
	// Figure 2.3: a sample feature vector.
	for _, lvl := range tr.Levels {
		for _, s := range lvl.PruneGroup {
			fv := lvl.Features[s]
			fmt.Fprintf(&sb, "Figure 2.3: FV(%v) = [Rows=%.0f, Cost=%.2f, Sel=%.3e]\n", s, fv.Rows, fv.Cost, fv.Sel)
			break
		}
		break
	}
	fmt.Fprintf(&sb, "total classes created: %d, plans costed: %d\n", stats.Memo.ClassesCreated, stats.PlansCosted)
	return sb.String(), nil
}

// Table31 reproduces Table 3.1: star join graph plan quality at 15, 20 and
// 23 relations (DP reference at 15; SDP reference beyond, where DP is
// infeasible).
func Table31(c Config) (string, error) {
	var sb strings.Builder
	sb.WriteString("Table 3.1: Star Plan Quality\n")
	for _, n := range []int{15, 20, 23} {
		b, err := c.starBatch(n, starDefaults(n), n <= starDPLimit, false)
		if err != nil {
			return "", err
		}
		sb.WriteString(b.QualityTable())
	}
	return sb.String(), nil
}

// starDPLimit is the largest star size where exhaustive DP fits the 1 GB
// budget (established by Table 2.1 / Table 3.3).
const starDPLimit = 17

func starDefaults(n int) int {
	if n <= 15 {
		return 8 // exhaustive DP on a 15-star runs ~9 s per instance
	}
	return 12
}

// Table32 reproduces Table 3.2: star overheads at 15, 20 and 23 relations.
func Table32(c Config) (string, error) {
	var sb strings.Builder
	sb.WriteString("Table 3.2: Star Optimization Overheads\n")
	for _, n := range []int{15, 20, 23} {
		b, err := c.starBatch(n, starDefaults(n), n <= starDPLimit, false)
		if err != nil {
			return "", err
		}
		sb.WriteString(b.OverheadTable())
	}
	return sb.String(), nil
}

// Table33 reproduces Table 3.3: the maximum star join size each algorithm
// can optimize within the memory budget, on the extended schema, with the
// optimization time at that maximum.
func Table33(c Config) (string, error) {
	cat := workload.ExtendedSchema(50)
	budget := c.budget()
	techs := []Technique{TechDP(budget), TechIDP(7, budget), TechIDP(4, budget), TechSDP(budget)}
	starts := map[string]int{"DP": 14, "IDP(7)": 18, "IDP(4)": 30, "SDP": 30}
	const ceiling = 45 // the paper's scan ceiling
	var sb strings.Builder
	sb.WriteString("Table 3.3: Maximum Star Scaleup (extended schema, scan ceiling 45)\n")
	fmt.Fprintf(&sb, "%-8s %10s %14s\n", "Tech", "MaxRels", "TimeAtMax")
	for _, t := range techs {
		maxN, tAtMax, err := maxFeasibleStar(cat, t, starts[t.Name], ceiling, c.Seed)
		if err != nil {
			return "", err
		}
		label := fmt.Sprintf("%d", maxN)
		if maxN >= ceiling {
			label = fmt.Sprintf(">=%d", ceiling)
		}
		fmt.Fprintf(&sb, "%-8s %10s %14v\n", t.Name, label, tAtMax.Round(time.Millisecond))
	}
	return sb.String(), nil
}

// maxFeasibleStar scans star sizes upward from start until the technique
// exceeds its budget, returning the last feasible size and its time. The
// ceiling is probed first: a technique that handles the largest size (the
// paper's 45-relation cap) needs no scan.
func maxFeasibleStar(cat *catalog.Catalog, t Technique, start, ceiling int, seed int64) (int, time.Duration, error) {
	q, err := workload.One(workload.Spec{Cat: cat, Topology: workload.Star, NumRelations: ceiling, Seed: seed})
	if err != nil {
		return 0, 0, err
	}
	if _, stats, err := t.Run(q); err == nil {
		return ceiling, stats.Elapsed, nil
	} else if !errors.Is(err, memo.ErrBudget) {
		return 0, 0, err
	}
	try := func(n int) (bool, time.Duration, error) {
		q, err := workload.One(workload.Spec{Cat: cat, Topology: workload.Star, NumRelations: n, Seed: seed})
		if err != nil {
			return false, 0, err
		}
		_, stats, err := t.Run(q)
		if errors.Is(err, memo.ErrBudget) {
			return false, 0, nil
		}
		if err != nil {
			return false, 0, err
		}
		return true, stats.Elapsed, nil
	}
	// Under reduced budgets the nominal start may itself be infeasible;
	// walk down to a feasible base first, then scan upward.
	for ; start > 2; start-- {
		ok, d, err := try(start)
		if err != nil {
			return 0, 0, err
		}
		if !ok {
			continue
		}
		last, lastTime := start, d
		for n := start + 1; n < ceiling; n++ {
			ok, d, err := try(n)
			if err != nil {
				return 0, 0, err
			}
			if !ok {
				break
			}
			last, lastTime = n, d
		}
		return last, lastTime, nil
	}
	return 0, 0, nil
}

// Table34 reproduces Table 3.4: ordered star plan quality at 15, 20, 23.
func Table34(c Config) (string, error) {
	var sb strings.Builder
	sb.WriteString("Table 3.4: Ordered Star Plan Quality\n")
	for _, n := range []int{15, 20, 23} {
		b, err := c.starBatch(n, starDefaults(n), n <= starDPLimit, true)
		if err != nil {
			return "", err
		}
		sb.WriteString(b.QualityTable())
	}
	return sb.String(), nil
}

// Table35 reproduces Table 3.5: ordered star-chain plan quality at 15, 20,
// 23. DP remains feasible at 20 (the chain keeps the star component small
// enough), as in the paper.
func Table35(c Config) (string, error) {
	var sb strings.Builder
	sb.WriteString("Table 3.5: Ordered Star-Chain Plan Quality\n")
	sizes := []struct {
		n, inst int
		refDP   bool
	}{{15, 12, true}, {20, 3, true}, {23, 8, false}}
	for _, sz := range sizes {
		b, err := c.starChainBatch(sz.n, sz.inst, sz.refDP, true)
		if err != nil {
			return "", err
		}
		sb.WriteString(b.QualityTable())
	}
	return sb.String(), nil
}

// Table36 reproduces Table 3.6: localized versus global skyline pruning on
// the (unordered) Star-Chain-20 graph, demonstrating the need for SDP's
// hub-localized pruning.
func Table36(c Config) (string, error) {
	spec := c.schema()
	spec.Topology = workload.StarChain
	spec.NumRelations = 20
	qs, err := workload.Instances(*spec, c.instances(3))
	if err != nil {
		return "", err
	}
	budget := c.budget()
	global := core.DefaultOptions()
	global.Scope = core.Global
	b, err := RunBatch("Star-Chain-20", qs, []Technique{
		TechDP(budget),
		TechSDPVariant("SDP/Glob", global, budget),
		TechSDPVariant("SDP/Local", core.DefaultOptions(), budget),
	}, "DP")
	if err != nil {
		return "", err
	}
	return "Table 3.6: Local vs Global Pruning (Star-Chain-20)\n" + b.QualityTable(), nil
}

// AblationPartitioning compares root-hub against parent-hub partitioning —
// the design choice Section 3.1 settles in favor of root hubs.
func AblationPartitioning(c Config) (string, error) {
	spec := c.schema()
	spec.Topology = workload.StarChain
	spec.NumRelations = 15
	qs, err := workload.Instances(*spec, c.instances(10))
	if err != nil {
		return "", err
	}
	budget := c.budget()
	parent := core.DefaultOptions()
	parent.Partitioning = core.ParentHub
	b, err := RunBatch("Star-Chain-15", qs, []Technique{
		TechDP(budget),
		TechSDPVariant("SDP/Root", core.DefaultOptions(), budget),
		TechSDPVariant("SDP/Parent", parent, budget),
	}, "DP")
	if err != nil {
		return "", err
	}
	return "Ablation: Root-Hub vs Parent-Hub Partitioning\n" + b.QualityTable() + b.OverheadTable(), nil
}

// AblationStrongSkyline evaluates the k-dominant ("strong") skyline the
// paper's conclusion lists as future work.
func AblationStrongSkyline(c Config) (string, error) {
	spec := c.schema()
	spec.Topology = workload.StarChain
	spec.NumRelations = 15
	qs, err := workload.Instances(*spec, c.instances(10))
	if err != nil {
		return "", err
	}
	budget := c.budget()
	strong := core.DefaultOptions()
	strong.Skyline = core.StrongSkyline
	b, err := RunBatch("Star-Chain-15", qs, []Technique{
		TechDP(budget),
		TechSDPVariant("SDP", core.DefaultOptions(), budget),
		TechSDPVariant("SDP/Strong", strong, budget),
	}, "DP")
	if err != nil {
		return "", err
	}
	return "Ablation: Strong (k-dominant) Skyline (future work)\n" + b.QualityTable() + b.OverheadTable(), nil
}

// AblationIDPEvals compares IDP's basic plan-evaluation functions (MinCost,
// MinRows, MinSel), the baseline study referenced from the IDP paper.
func AblationIDPEvals(c Config) (string, error) {
	spec := c.schema()
	spec.Topology = workload.StarChain
	spec.NumRelations = 15
	qs, err := workload.Instances(*spec, c.instances(10))
	if err != nil {
		return "", err
	}
	budget := c.budget()
	techs := []Technique{TechDP(budget)}
	for _, ev := range []struct {
		name string
		eval idp.Eval
	}{{"IDP/Rows", idp.MinRows}, {"IDP/Cost", idp.MinCost}, {"IDP/Sel", idp.MinSel}} {
		eval := ev.eval
		techs = append(techs, Technique{Name: ev.name, Run: func(q *query.Query) (*plan.Plan, dp.Stats, error) {
			opts := idp.DefaultOptions()
			opts.Eval = eval
			opts.Budget = budget
			return idp.Optimize(q, opts)
		}})
	}
	b, err := RunBatch("Star-Chain-15", qs, techs, "DP")
	if err != nil {
		return "", err
	}
	return "Ablation: IDP Plan-Evaluation Functions\n" + b.QualityTable(), nil
}

// AblationPriorArt compares every optimizer family the paper situates SDP
// against — exhaustive DP, IDP, SDP, greedy operator ordering (GOO), the
// randomized searches (II, SA) and a GEQO-style genetic optimizer — on the
// Star-Chain-15 workload. The randomized and genetic baselines are the
// "jettison DP entirely" alternatives of the paper's introduction.
func AblationPriorArt(c Config) (string, error) {
	spec := c.schema()
	spec.Topology = workload.StarChain
	spec.NumRelations = 15
	qs, err := workload.Instances(*spec, c.instances(10))
	if err != nil {
		return "", err
	}
	budget := c.budget()
	techs := []Technique{
		TechDP(budget),
		TechIDP(7, budget),
		TechSDP(budget),
		TechGOO(),
		{Name: "II", Run: func(q *query.Query) (*plan.Plan, dp.Stats, error) {
			return randomized.Optimize(q, randomized.Options{Algorithm: randomized.II, Seed: c.Seed})
		}},
		{Name: "SA", Run: func(q *query.Query) (*plan.Plan, dp.Stats, error) {
			return randomized.Optimize(q, randomized.Options{Algorithm: randomized.SA, Seed: c.Seed})
		}},
		{Name: "GEQO", Run: func(q *query.Query) (*plan.Plan, dp.Stats, error) {
			return genetic.Optimize(q, genetic.Options{Seed: c.Seed})
		}},
	}
	b, err := RunBatch("Star-Chain-15", qs, techs, "DP")
	if err != nil {
		return "", err
	}
	return "Comparison: All Optimizer Families (Star-Chain-15)\n" + b.QualityTable() + b.OverheadTable(), nil
}

// AblationIDP2 compares the two IDP families — IDP1's bottom-up block
// commitment against IDP2's greedy-then-re-optimize subtree passes — on
// the Star-Chain-15 workload.
func AblationIDP2(c Config) (string, error) {
	spec := c.schema()
	spec.Topology = workload.StarChain
	spec.NumRelations = 15
	qs, err := workload.Instances(*spec, c.instances(10))
	if err != nil {
		return "", err
	}
	budget := c.budget()
	b, err := RunBatch("Star-Chain-15", qs, []Technique{
		TechDP(budget),
		TechIDP(7, budget),
		TechIDP2(7, budget),
		TechIDP2(4, budget),
		TechSDP(budget),
	}, "DP")
	if err != nil {
		return "", err
	}
	return "Ablation: IDP1 vs IDP2 (Star-Chain-15)\n" + b.QualityTable() + b.OverheadTable(), nil
}

// ExtTopologies substantiates the paper's remark that "results for the
// other topologies are similar in flavor" (Section 3.1): plan quality on
// cycle and clique workloads. Cycles have no hubs (SDP equals DP); cliques
// are all hubs (strong pruning).
func ExtTopologies(c Config) (string, error) {
	budget := c.budget()
	var sb strings.Builder
	sb.WriteString("Extension: Other Join-Graph Topologies\n")
	for _, wl := range []struct {
		topo workload.Topology
		n    int
		inst int
	}{
		{workload.Cycle, 12, c.instances(10)},
		{workload.Clique, 9, c.instances(8)},
	} {
		spec := c.schema()
		spec.Topology = wl.topo
		spec.NumRelations = wl.n
		qs, err := workload.Instances(*spec, wl.inst)
		if err != nil {
			return "", err
		}
		graph := fmt.Sprintf("%s-%d", wl.topo, wl.n)
		b, err := RunBatch(graph, qs, []Technique{
			TechDP(budget), TechIDP(7, budget), TechIDP(4, budget), TechSDP(budget),
		}, "DP")
		if err != nil {
			return "", err
		}
		sb.WriteString(b.QualityTable())
	}
	return sb.String(), nil
}

// ExtTPCH compares the optimizers on the TPC-H query shapes the paper's
// introduction cites (Q8 and Q9 are its Star-Chain exemplars), at scale
// factor 1. Every query has at most eight relations, so exhaustive DP is
// the reference and the interesting outputs are the per-query plan costs
// and the effort each technique spends reaching (or missing) them.
func ExtTPCH(c Config) (string, error) {
	cat, err := tpch.Schema(1)
	if err != nil {
		return "", err
	}
	budget := c.budget()
	var sb strings.Builder
	sb.WriteString("Extension: TPC-H Query Shapes (SF 1)\n")
	fmt.Fprintf(&sb, "%-5s %-8s %14s %9s %12s %12s\n", "Query", "Tech", "PlanCost", "vs DP", "PlansCosted", "Time")
	for _, name := range tpch.Names() {
		q, err := tpch.Query(cat, name)
		if err != nil {
			return "", err
		}
		var ref float64
		for _, t := range []Technique{TechDP(budget), TechIDP(7, budget), TechIDP(4, budget), TechSDP(budget)} {
			p, stats, err := t.Run(q)
			if err != nil {
				return "", fmt.Errorf("%s %s: %w", name, t.Name, err)
			}
			if ref == 0 {
				ref = p.Cost
			}
			fmt.Fprintf(&sb, "%-5s %-8s %14.1f %9.4f %12d %12v\n",
				name, t.Name, p.Cost, p.Cost/ref, stats.PlansCosted, stats.Elapsed.Round(time.Microsecond))
		}
	}
	return sb.String(), nil
}

// ExtValidate closes the loop the paper leaves open: it executes the
// optimizers' plans on synthetic data generated from a scaled-down schema
// and reports (a) that differently-shaped plans return identical result
// multisets, and (b) how far the optimizer's cardinality estimates land
// from the truth. The paper's metrics are all optimizer-internal; this is
// the repository's end-to-end soundness check.
func ExtValidate(c Config) (string, error) {
	cfg := catalog.DefaultConfig()
	cfg.NumRelations = 8
	cfg.BaseRows = 25
	cfg.Ratio = 1.3
	cfg.MinDomain = 12
	cfg.MaxDomain = 150
	cfg.Seed = c.Seed + 1
	if c.Skewed {
		cfg.SkewFraction = 0.5
	}
	cat, err := catalog.Synthetic(cfg)
	if err != nil {
		return "", err
	}
	var sb strings.Builder
	sb.WriteString("Extension: Executor Validation (scaled-down schema)\n")
	fmt.Fprintf(&sb, "%-14s %10s %10s %10s %10s  %s\n", "Graph", "EstRows", "ActRows", "log10Err", "Plans", "Multisets")
	for _, wl := range []struct {
		topo workload.Topology
		n    int
	}{
		{workload.Chain, 5},
		{workload.Star, 6},
		{workload.StarChain, 7},
	} {
		qs, err := workload.Instances(workload.Spec{Cat: cat, Topology: wl.topo, NumRelations: wl.n, Seed: c.Seed}, 1)
		if err != nil {
			return "", err
		}
		q := qs[0]
		db, err := exec.Generate(q, c.Seed, 100_000)
		if err != nil {
			return "", err
		}
		plans := map[string]*plan.Plan{}
		if plans["DP"], _, err = dp.Optimize(q, dp.Options{}); err != nil {
			return "", err
		}
		if plans["SDP"], _, err = core.Optimize(q, core.DefaultOptions()); err != nil {
			return "", err
		}
		if plans["GOO"], _, err = greedy.Optimize(q, greedy.Options{}); err != nil {
			return "", err
		}
		fingerprints := map[string]bool{}
		var actual int
		for _, p := range plans {
			res, err := db.Run(p)
			if err != nil {
				return "", err
			}
			fingerprints[res.Fingerprint()] = true
			actual = res.NumRows()
		}
		est := plans["DP"].Rows
		agreement := "IDENTICAL"
		if len(fingerprints) != 1 {
			agreement = "MISMATCH"
		}
		fmt.Fprintf(&sb, "%-14s %10.0f %10d %+10.2f %10d  %s\n",
			fmt.Sprintf("%s-%d", wl.topo, wl.n), est, actual,
			exec.EstimationError(est, actual), len(plans), agreement)
	}
	return sb.String(), nil
}

// AblationBushy quantifies the bushy-join benefit: exhaustive DP against
// its System-R left-deep restriction on the Star-Chain-15 workload. The
// paper's enumerator (PostgreSQL's) is bushy; this ablation shows what the
// restriction would cost.
func AblationBushy(c Config) (string, error) {
	spec := c.schema()
	spec.Topology = workload.StarChain
	spec.NumRelations = 15
	qs, err := workload.Instances(*spec, c.instances(10))
	if err != nil {
		return "", err
	}
	budget := c.budget()
	leftDeep := Technique{Name: "DP/LD", Run: func(q *query.Query) (*plan.Plan, dp.Stats, error) {
		return dp.Optimize(q, dp.Options{Budget: budget, LeftDeepOnly: true})
	}}
	b, err := RunBatchWorkers("Star-Chain-15", qs, []Technique{TechDP(budget), leftDeep}, "DP", c.workers())
	if err != nil {
		return "", err
	}
	return "Ablation: Bushy vs Left-Deep Enumeration\n" + b.QualityTable() + b.OverheadTable(), nil
}

// ExtEstimation compares filter-selectivity estimation under the uniform
// assumption against the distribution-aware (histogram CDF) estimate the
// cost model uses, measured against executed ground truth on skewed
// columns. This validates the ANALYZE-style statistics substrate.
func ExtEstimation(c Config) (string, error) {
	cfg := catalog.DefaultConfig()
	cfg.NumRelations = 4
	cfg.BaseRows = 2000
	cfg.Ratio = 1.2
	cfg.MinDomain = 50
	cfg.MaxDomain = 500
	cfg.SkewFraction = 1 // every column skewed: the hard case for uniform
	cfg.Seed = c.Seed + 3
	cat, err := catalog.Synthetic(cfg)
	if err != nil {
		return "", err
	}
	qs, err := workload.Instances(workload.Spec{
		Cat: cat, Topology: workload.Chain, NumRelations: 3,
		FilterFraction: 1, Seed: c.Seed,
	}, c.instances(8))
	if err != nil {
		return "", err
	}
	var sb strings.Builder
	sb.WriteString("Extension: Filter Selectivity Estimation (skewed columns)\n")
	fmt.Fprintf(&sb, "%-8s %10s %10s %10s %12s %12s\n", "Filter", "Actual", "Uniform", "CDF", "errUniform", "errCDF")
	var sumU, sumC float64
	n := 0
	for qi, q := range qs {
		db, err := exec.Generate(q, c.Seed+int64(qi), 10_000)
		if err != nil {
			return "", err
		}
		m := cost.NewModel(q, cost.DefaultParams())
		for _, f := range q.Filters {
			rel := q.Relation(f.Rel)
			col := rel.Cols[f.Col]
			actual := 0
			res, err := db.Run(&plan.Plan{Op: plan.SeqScan, Rels: bits.Single(f.Rel), Rel: f.Rel, Rows: rel.Rows})
			if err != nil {
				return "", err
			}
			actual = res.NumRows()
			uniform := rel.Rows * math.Min(1, float64(f.Bound)/col.NDV)
			cdf := rel.Rows * m.FilterSel(f)
			eu := math.Abs(exec.EstimationError(uniform, actual))
			ec := math.Abs(exec.EstimationError(cdf, actual))
			sumU += eu
			sumC += ec
			n++
			fmt.Fprintf(&sb, "q%d.%-5s %10d %10.0f %10.0f %12.3f %12.3f\n",
				qi, col.Name, actual, uniform, cdf, eu, ec)
		}
	}
	if n > 0 {
		fmt.Fprintf(&sb, "mean |log10 error|: uniform=%.3f cdf=%.3f (lower is better)\n",
			sumU/float64(n), sumC/float64(n))
	}
	return sb.String(), nil
}
