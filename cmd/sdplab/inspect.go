package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"sdpopt"
)

// inspectCmd renders a flight-recorder dump — the /debug/flight.json
// document saved while debugging a slow or failed request — as the span
// trees the server shows at /debug/requests, followed by the same
// per-level and per-partition aggregate tables sdptrace prints for JSONL
// traces. The dump is read from a file argument, or stdin with "-", so
// `curl .../debug/flight.json | sdplab inspect -` works.
func inspectCmd(args []string) error {
	fs := flag.NewFlagSet("inspect", flag.ExitOnError)
	top := fs.Int("top", 5, "levels to list in the per-level table")
	traceID := fs.String("trace", "", "render only traces whose ID starts with this prefix")
	summaryOnly := fs.Bool("summary", false, "print only the aggregate tables, not the span trees")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("usage: sdplab inspect [-top N] [-trace PREFIX] [-summary] <flight.json | ->")
	}
	var r io.Reader = os.Stdin
	if path := fs.Arg(0); path != "-" {
		f, err := os.Open(path)
		if err != nil {
			return err
		}
		defer f.Close()
		r = f
	}
	dump, err := sdpopt.ReadFlightDump(r)
	if err != nil {
		return err
	}

	traces := dump.Traces()
	if *traceID != "" {
		kept := traces[:0]
		for _, t := range traces {
			if strings.HasPrefix(t.TraceID, *traceID) {
				kept = append(kept, t)
			}
		}
		traces = kept
		if len(traces) == 0 {
			return fmt.Errorf("no trace with ID prefix %q in dump", *traceID)
		}
	}

	fmt.Printf("flight dump at %s: %d started, %d finished, %d active, %d slow (>= %v), %d errored\n\n",
		dump.Time.Format(time.RFC3339), dump.Counts.Started, dump.Counts.Finished,
		dump.Counts.Active, dump.Counts.Slow, time.Duration(dump.Config.SlowThresholdNS), dump.Counts.Errored)

	if !*summaryOnly {
		for i := range traces {
			fmt.Println(traces[i].Render())
		}
	}

	// The span trees double as an event stream: the same Summarize that
	// powers sdptrace aggregates them into per-technique, per-level and
	// per-partition tables.
	filtered := &sdpopt.FlightDump{Active: traces}
	if sum := sdpopt.SummarizeTrace(filtered.Records()); sum != nil {
		fmt.Print(sum.Render(*top))
	}
	return nil
}
