// Command sdptrace summarizes a JSONL optimizer trace written by
// `sdplab run -trace` (or any TraceJSONLSink): effort per technique, the
// top enumeration levels by time, and skyline pruning efficacy per RC/CS/RS
// criterion.
//
// Usage:
//
//	sdplab run -exp tab1.2 -trace out.jsonl
//	sdptrace out.jsonl
//	sdptrace -top 10 out.jsonl
//	sdptrace -raw out.jsonl        # dump decoded events instead
package main

import (
	"flag"
	"fmt"
	"os"

	"sdpopt"
)

func main() {
	top := flag.Int("top", 5, "number of levels in the top-levels-by-time table")
	raw := flag.Bool("raw", false, "print each decoded event instead of the summary")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: sdptrace [-top N] [-raw] <trace.jsonl>")
		os.Exit(2)
	}
	if err := run(flag.Arg(0), *top, *raw); err != nil {
		fmt.Fprintln(os.Stderr, "sdptrace:", err)
		os.Exit(1)
	}
}

func run(path string, top int, raw bool) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	records, err := sdpopt.ReadTraceJSONL(f)
	if err != nil {
		return err
	}
	if raw {
		for _, r := range records {
			fmt.Printf("%v\n", map[string]any(r))
		}
		return nil
	}
	fmt.Print(sdpopt.SummarizeTrace(records).Render(top))
	return nil
}
