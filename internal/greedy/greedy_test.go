package greedy

import (
	"testing"

	"sdpopt/internal/bits"
	"sdpopt/internal/dp"
	"sdpopt/internal/query"
	"sdpopt/internal/testutil"
)

func TestGreedyProducesValidPlans(t *testing.T) {
	for _, tc := range []struct {
		name  string
		n     int
		edges []query.Edge
	}{
		{"chain-8", 8, query.ChainEdges(8)},
		{"star-9", 9, query.StarEdges(9)},
		{"star-chain-12", 12, query.StarChainEdges(12, 8)},
		{"clique-6", 6, query.CliqueEdges(6)},
	} {
		q := testutil.MustQuery(testutil.Catalog(tc.n), tc.n, tc.edges, nil)
		p, stats, err := Optimize(q, Options{})
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if err := p.Validate(); err != nil {
			t.Fatalf("%s: invalid plan: %v", tc.name, err)
		}
		if p.Rels != bits.Full(tc.n) {
			t.Fatalf("%s: covers %v", tc.name, p.Rels)
		}
		if stats.PlansCosted <= 0 || stats.Elapsed <= 0 {
			t.Errorf("%s: stats = %+v", tc.name, stats)
		}
	}
}

func TestGreedyNeverBeatsDP(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		cfg := testutil.Catalog(10)
		_ = cfg
		q := testutil.MustQuery(testutil.Catalog(10), 10, query.StarChainEdges(10, 6), nil)
		optimal, _, err := dp.Optimize(q, dp.Options{})
		if err != nil {
			t.Fatal(err)
		}
		p, _, err := Optimize(q, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if p.Cost < optimal.Cost*(1-1e-9) {
			t.Fatalf("greedy %g beat DP %g", p.Cost, optimal.Cost)
		}
	}
}

func TestGreedyIsCheap(t *testing.T) {
	q := testutil.MustQuery(testutil.Catalog(12), 12, query.StarEdges(12), nil)
	_, gooStats, err := Optimize(q, Options{})
	if err != nil {
		t.Fatal(err)
	}
	_, dpStats, err := dp.Optimize(q, dp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if gooStats.PlansCosted*10 > dpStats.PlansCosted {
		t.Errorf("greedy costed %d plans, DP %d — not cheap enough",
			gooStats.PlansCosted, dpStats.PlansCosted)
	}
}

func TestGreedyOrdered(t *testing.T) {
	cat := testutil.Catalog(8)
	q := testutil.MustQuery(cat, 8, query.StarEdges(8), &query.OrderSpec{Rel: 0, Col: 0})
	p, _, err := Optimize(q, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if ec := q.OrderEqClass(); ec >= 0 && p.Order != ec {
		t.Errorf("ordered greedy delivers order %d, want %d", p.Order, ec)
	}
}

func TestGreedyDeterministic(t *testing.T) {
	q := testutil.MustQuery(testutil.Catalog(10), 10, query.StarEdges(10), nil)
	a, _, err := Optimize(q, Options{})
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := Optimize(q, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if a.Cost != b.Cost {
		t.Errorf("greedy non-deterministic: %g vs %g", a.Cost, b.Cost)
	}
}
