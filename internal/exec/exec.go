// Package exec executes physical plans over synthetic data generated from
// the catalog statistics.
//
// The paper's experiments never execute queries — every reported number
// comes from the optimizer — but an executor makes the optimizer testable
// end to end: data is generated to match the catalog's cardinalities,
// distinct counts and skew, each physical operator (scans, sorts, all four
// joins) is implemented with its real semantics, and any two plans for the
// same query must produce the same result multiset. That invariant is the
// strongest correctness check the plan space admits and is exercised by
// this package's tests and the validate example.
package exec

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"sdpopt/internal/bits"
	"sdpopt/internal/catalog"
	"sdpopt/internal/plan"
	"sdpopt/internal/query"
)

// Table is a materialized intermediate result: a row-major matrix whose
// columns are identified by (query-local relation, column) pairs.
type Table struct {
	// Cols maps output column position to its origin.
	Cols []ColRef
	// Rows holds the tuples.
	Rows [][]int64
}

// ColRef identifies one output column's origin.
type ColRef struct{ Rel, Col int }

// NumRows returns the tuple count.
func (t *Table) NumRows() int { return len(t.Rows) }

// colIndex returns the position of (rel, col) in the output, or -1.
func (t *Table) colIndex(rel, col int) int {
	for i, c := range t.Cols {
		if c.Rel == rel && c.Col == col {
			return i
		}
	}
	return -1
}

// DB holds generated base-relation data for one query's relations.
type DB struct {
	q *query.Query
	// tables[i] is the data of query-local relation i, one row per tuple,
	// one value per column.
	tables [][][]int64
}

// Generate builds synthetic data for every relation of q, honoring each
// column's distinct count and skew from the catalog. Generation is
// deterministic in seed. Relation cardinalities above maxRows are rejected
// — the executor is a validation harness for scaled-down schemas, not a
// data warehouse.
func Generate(q *query.Query, seed int64, maxRows int) (*DB, error) {
	db := &DB{q: q, tables: make([][][]int64, q.NumRelations())}
	for i := 0; i < q.NumRelations(); i++ {
		rel := q.Relation(i)
		n := int(rel.Rows)
		if n > maxRows {
			return nil, fmt.Errorf("exec: relation %s has %d rows, cap is %d", rel.Name, n, maxRows)
		}
		// Per-relation deterministic stream, independent of query shape.
		rng := rand.New(rand.NewSource(seed ^ int64(q.Rels[i]+1)*2654435761))
		rows := make([][]int64, n)
		for r := range rows {
			rows[r] = make([]int64, len(rel.Cols))
			for c := range rel.Cols {
				rows[r][c] = drawValue(&rel.Cols[c], n, rng)
			}
		}
		db.tables[i] = rows
	}
	return db, nil
}

// drawValue samples one column value in [0, NDV): uniformly for unskewed
// columns, exponentially tilted for skewed ones (matching the catalog's
// "exponential distribution" of values), Zipf-distributed when the column
// carries a ZipfS exponent. Zipf skew is a data-generation property the
// estimator never sees — the uniform-assumption estimates diverge from the
// executed actuals, which is exactly what the cardinality-feedback ledger
// exists to measure.
func drawValue(col *catalog.Column, rows int, rng *rand.Rand) int64 {
	ndv := int64(col.NDV)
	if ndv < 1 {
		// No distinct count — the column lost its statistics (DegradeCatalog
		// zeroes NDV alongside StatsLost). The underlying data still exists;
		// assume near-unique values, PostgreSQL's ndistinct=-1 convention.
		// Never collapse to a constant: a single-valued join column turns
		// every join into a cross product.
		ndv = int64(rows)
		if ndv < 1 {
			ndv = 1
		}
	}
	if col.ZipfS > 1 {
		// rand.Zipf draws k in [0, imax] with P(k) ∝ 1/(1+k)^s. The sampler
		// holds no state beyond its constants, so constructing it per draw
		// keeps the per-relation stream deterministic in seed alone.
		return int64(rand.NewZipf(rng, col.ZipfS, 1, uint64(ndv-1)).Uint64())
	}
	if col.Skew == 0 {
		return rng.Int63n(ndv)
	}
	// Exponential with rate λ = skew, folded into the domain: small values
	// are much likelier than large ones.
	v := int64(rng.ExpFloat64() / col.Skew * float64(ndv) / 4)
	if v >= ndv {
		v = ndv - 1
	}
	return v
}

// maxJoinRows bounds any single join's materialized output. Cardinality
// misestimates are the executor's reason to exist, but a plan whose true
// intermediate is astronomically large (a de-facto cross product over a
// mis-specified catalog) must fail fast rather than consume the host; the
// feedback sampler counts such failures instead of wedging a worker.
const maxJoinRows = 1 << 20

// Run executes p against the database and returns its materialized result.
func (db *DB) Run(p *plan.Plan) (*Table, error) {
	if err := p.Validate(); err != nil {
		return nil, fmt.Errorf("exec: %w", err)
	}
	return db.run(p, nil)
}

// RunActuals executes p and additionally records the actual output row count
// of every plan node, keyed by node pointer. Within one plan tree each node's
// subtree covers a distinct relation set, so node identity is unambiguous.
// One execution yields every intermediate cardinality — the raw material of
// the estimate-vs-actual feedback ledger — where re-running each subtree
// would square the work.
func (db *DB) RunActuals(p *plan.Plan) (*Table, map[*plan.Plan]int, error) {
	if err := p.Validate(); err != nil {
		return nil, nil, fmt.Errorf("exec: %w", err)
	}
	actuals := make(map[*plan.Plan]int)
	t, err := db.run(p, actuals)
	if err != nil {
		return nil, nil, err
	}
	return t, actuals, nil
}

// run executes one node, recording its actual output cardinality in actuals
// when non-nil.
func (db *DB) run(p *plan.Plan, actuals map[*plan.Plan]int) (*Table, error) {
	t, err := db.runNode(p, actuals)
	if err != nil {
		return nil, err
	}
	if actuals != nil {
		actuals[p] = t.NumRows()
	}
	return t, nil
}

func (db *DB) runNode(p *plan.Plan, actuals map[*plan.Plan]int) (*Table, error) {
	switch p.Op {
	case plan.SeqScan:
		return db.scan(p.Rel, false), nil
	case plan.IndexScan:
		return db.scan(p.Rel, true), nil
	case plan.Sort:
		in, err := db.run(p.Left, actuals)
		if err != nil {
			return nil, err
		}
		return db.sortTable(in, p.Order)
	case plan.NestLoop, plan.HashJoin, plan.MergeJoin, plan.IndexNestLoop:
		left, err := db.run(p.Left, actuals)
		if err != nil {
			return nil, err
		}
		var right *Table
		if p.Op == plan.IndexNestLoop {
			// The inner of an indexed nested loop is the base relation the
			// probe descends into; its actual is the filtered scan size.
			right = db.scan(p.Right.Rel, true)
			if actuals != nil {
				actuals[p.Right] = right.NumRows()
			}
		} else {
			right, err = db.run(p.Right, actuals)
			if err != nil {
				return nil, err
			}
		}
		return db.join(p, left, right)
	default:
		return nil, fmt.Errorf("exec: unsupported operator %v", p.Op)
	}
}

// scan materializes base relation rel, applying the query's local range
// filters; index scans deliver rows ordered by the indexed column, as the
// plan's order property promises.
func (db *DB) scan(rel int, indexOrder bool) *Table {
	relMeta := db.q.Relation(rel)
	t := &Table{}
	for c := range relMeta.Cols {
		t.Cols = append(t.Cols, ColRef{Rel: rel, Col: c})
	}
	filters := db.q.FiltersOn(rel)
	for _, row := range db.tables[rel] {
		pass := true
		for _, f := range filters {
			if row[f.Col] >= f.Bound {
				pass = false
				break
			}
		}
		if pass {
			t.Rows = append(t.Rows, row)
		}
	}
	if indexOrder {
		idx := relMeta.IndexCol
		sort.SliceStable(t.Rows, func(a, b int) bool { return t.Rows[a][idx] < t.Rows[b][idx] })
	}
	return t
}

// sortTable orders the input on (one of) the columns of order equivalence
// class ec present in the table.
func (db *DB) sortTable(in *Table, ec int) (*Table, error) {
	key := db.orderColumn(in, ec)
	if key < 0 {
		return nil, fmt.Errorf("exec: no column of order class %d in input", ec)
	}
	out := &Table{Cols: in.Cols, Rows: append([][]int64(nil), in.Rows...)}
	sort.SliceStable(out.Rows, func(a, b int) bool { return out.Rows[a][key] < out.Rows[b][key] })
	return out, nil
}

// orderColumn finds a column of equivalence class ec in the table.
func (db *DB) orderColumn(t *Table, ec int) int {
	for i, c := range t.Cols {
		if db.q.EqClass(c.Rel, c.Col) == ec {
			return i
		}
	}
	return -1
}

// join evaluates every query predicate spanning the two inputs. All four
// physical operators share these semantics — hash join implements them with
// a build/probe on the first predicate, the others nest-and-filter — so all
// plans of one query produce identical result multisets.
func (db *DB) join(p *plan.Plan, left, right *Table) (*Table, error) {
	leftRels := relsOf(left)
	rightRels := relsOf(right)
	predIdx := db.q.PredsBetween(leftRels, rightRels)
	var pairs []keyPair
	for _, pi := range predIdx {
		pr := db.q.Preds[pi]
		l := left.colIndex(pr.LeftRel, pr.LeftCol)
		r := right.colIndex(pr.RightRel, pr.RightCol)
		if l < 0 {
			// Predicate written right-to-left relative to this join.
			l = left.colIndex(pr.RightRel, pr.RightCol)
			r = right.colIndex(pr.LeftRel, pr.LeftCol)
		}
		if l < 0 || r < 0 {
			return nil, fmt.Errorf("exec: predicate %d columns not found in join inputs", pi)
		}
		pairs = append(pairs, keyPair{l, r})
	}
	if len(pairs) == 0 {
		return nil, fmt.Errorf("exec: cartesian join of %v and %v", leftRels, rightRels)
	}

	out := &Table{Cols: append(append([]ColRef(nil), left.Cols...), right.Cols...)}
	switch p.Op {
	case plan.HashJoin:
		// Build on the first key pair, re-check the rest.
		build := map[int64][]int{}
		for ri, row := range right.Rows {
			build[row[pairs[0].r]] = append(build[row[pairs[0].r]], ri)
		}
		for _, lrow := range left.Rows {
			if len(out.Rows) > maxJoinRows {
				return nil, fmt.Errorf("exec: join of %v and %v exceeds %d rows", leftRels, rightRels, maxJoinRows)
			}
			for _, ri := range build[lrow[pairs[0].l]] {
				rrow := right.Rows[ri]
				if matches(lrow, rrow, pairs) {
					out.Rows = append(out.Rows, concat(lrow, rrow))
				}
			}
		}
	default:
		// Nested loop semantics (also fine for merge join correctness —
		// ordering is a physical property, not a logical one).
		for _, lrow := range left.Rows {
			if len(out.Rows) > maxJoinRows {
				return nil, fmt.Errorf("exec: join of %v and %v exceeds %d rows", leftRels, rightRels, maxJoinRows)
			}
			for _, rrow := range right.Rows {
				if matches(lrow, rrow, pairs) {
					out.Rows = append(out.Rows, concat(lrow, rrow))
				}
			}
		}
	}
	// Physical output order: merge joins deliver key order; sorts and index
	// order are preserved by the nested loop's outer-major iteration. For
	// the multiset-equality validation the order is irrelevant, but a merge
	// join's promised order is re-established here so downstream sorts stay
	// honest.
	if p.Op == plan.MergeJoin && p.Order != plan.NoOrder {
		if key := db.orderColumn(out, p.Order); key >= 0 {
			sort.SliceStable(out.Rows, func(a, b int) bool { return out.Rows[a][key] < out.Rows[b][key] })
		}
	}
	return out, nil
}

// keyPair is one equi-join key: column positions in the left and right
// join inputs.
type keyPair struct{ l, r int }

func relsOf(t *Table) bits.Set {
	var s bits.Set
	for _, c := range t.Cols {
		s = s.Add(c.Rel)
	}
	return s
}

func matches(lrow, rrow []int64, pairs []keyPair) bool {
	for _, kp := range pairs {
		if lrow[kp.l] != rrow[kp.r] {
			return false
		}
	}
	return true
}

func concat(a, b []int64) []int64 {
	out := make([]int64, 0, len(a)+len(b))
	return append(append(out, a...), b...)
}

// Fingerprint returns an order-insensitive digest of the result: the sorted
// multiset of rows rendered canonically. Two plans for the same query are
// equivalent iff their fingerprints match.
func (t *Table) Fingerprint() string {
	// Canonicalize column order by (rel, col) so bushy vs left-deep shapes
	// compare equal.
	perm := make([]int, len(t.Cols))
	for i := range perm {
		perm[i] = i
	}
	sort.Slice(perm, func(a, b int) bool {
		ca, cb := t.Cols[perm[a]], t.Cols[perm[b]]
		if ca.Rel != cb.Rel {
			return ca.Rel < cb.Rel
		}
		return ca.Col < cb.Col
	})
	lines := make([]string, len(t.Rows))
	for i, row := range t.Rows {
		buf := make([]byte, 0, len(row)*10)
		for _, p := range perm {
			buf = appendInt(buf, row[p])
			buf = append(buf, ',')
		}
		lines[i] = string(buf)
	}
	sort.Strings(lines)
	out := make([]byte, 0, len(lines)*16)
	for _, l := range lines {
		out = append(out, l...)
		out = append(out, '\n')
	}
	return string(out)
}

func appendInt(buf []byte, v int64) []byte {
	return append(buf, fmt.Sprintf("%d", v)...)
}

// EstimationError compares an estimated cardinality with the actual row
// count, returning the log10 error (q-error direction-signed): 0 means
// exact, 1 means a 10× overestimate, -1 a 10× underestimate.
func EstimationError(estimated float64, actual int) float64 {
	a := float64(actual)
	if a < 1 {
		a = 1
	}
	e := estimated
	if e < 1 {
		e = 1
	}
	return math.Log10(e / a)
}

// SortedBy reports whether the table's rows are non-decreasing on some
// column of order equivalence class ec.
func (db *DB) SortedBy(t *Table, ec int) bool {
	key := db.orderColumn(t, ec)
	if key < 0 {
		return false
	}
	for i := 1; i < len(t.Rows); i++ {
		if t.Rows[i-1][key] > t.Rows[i][key] {
			return false
		}
	}
	return true
}
