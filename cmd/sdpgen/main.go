// Command sdpgen emits a generated workload as SQL text — the queries the
// experiments optimize, in executable form.
//
// Usage:
//
//	sdpgen -topology star -rels 15 -count 3
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"sdpopt"
)

func main() {
	topo := flag.String("topology", "star", "chain | star | cycle | clique | star-chain")
	rels := flag.Int("rels", 15, "number of relations")
	count := flag.Int("count", 5, "number of query instances")
	seed := flag.Int64("seed", 1, "workload seed")
	ordered := flag.Bool("ordered", false, "add an ORDER BY on a join column")
	flag.Parse()

	topos := map[string]sdpopt.Topology{
		"chain": sdpopt.Chain, "star": sdpopt.Star, "cycle": sdpopt.Cycle,
		"clique": sdpopt.Clique, "star-chain": sdpopt.StarChain,
	}
	t, ok := topos[strings.ToLower(*topo)]
	if !ok {
		fmt.Fprintf(os.Stderr, "sdpgen: unknown topology %q\n", *topo)
		os.Exit(2)
	}
	qs, err := sdpopt.Instances(sdpopt.WorkloadSpec{
		Cat: sdpopt.PaperSchema(), Topology: t, NumRelations: *rels,
		Ordered: *ordered, Seed: *seed,
	}, *count)
	if err != nil {
		fmt.Fprintln(os.Stderr, "sdpgen:", err)
		os.Exit(1)
	}
	for i, q := range qs {
		fmt.Printf("-- instance %d (%s-%d)\n%s\n\n", i+1, *topo, *rels, q.SQL())
	}
}
