package query

import "fmt"

// Edge is an undirected join-graph edge between two query-local relation
// indexes.
type Edge struct{ A, B int }

// ChainEdges returns the edges of an n-relation chain: 0–1–2–…–(n-1). A
// chain has no hubs, so SDP applies no pruning at all to it.
func ChainEdges(n int) []Edge {
	mustAtLeast(n, 1, "chain")
	edges := make([]Edge, 0, n-1)
	for i := 0; i+1 < n; i++ {
		edges = append(edges, Edge{i, i + 1})
	}
	return edges
}

// StarEdges returns the edges of an n-relation star with relation 0 at the
// hub and relations 1..n-1 as spokes.
func StarEdges(n int) []Edge {
	mustAtLeast(n, 2, "star")
	edges := make([]Edge, 0, n-1)
	for i := 1; i < n; i++ {
		edges = append(edges, Edge{0, i})
	}
	return edges
}

// CycleEdges returns the edges of an n-relation cycle.
func CycleEdges(n int) []Edge {
	mustAtLeast(n, 3, "cycle")
	edges := ChainEdges(n)
	return append(edges, Edge{n - 1, 0})
}

// CliqueEdges returns the edges of an n-relation clique: every pair joined.
func CliqueEdges(n int) []Edge {
	mustAtLeast(n, 2, "clique")
	var edges []Edge
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			edges = append(edges, Edge{i, j})
		}
	}
	return edges
}

// StarChainEdges returns the paper's Star-Chain topology (Figure 1.1):
// relation 0 star-joins with relations 1..spokes, and the last spoke
// continues into a chain through relations spokes+1..n-1. With n=15 and
// spokes=10 this is exactly the paper's Star-Chain-15, which it notes is
// structurally similar to TPC-H queries 8 and 9.
func StarChainEdges(n, spokes int) []Edge {
	mustAtLeast(n, 3, "star-chain")
	if spokes < 1 || spokes > n-1 {
		panic(fmt.Sprintf("query: star-chain spokes %d out of range [1,%d]", spokes, n-1))
	}
	edges := make([]Edge, 0, n-1)
	for i := 1; i <= spokes; i++ {
		edges = append(edges, Edge{0, i})
	}
	for i := spokes; i+1 < n; i++ {
		edges = append(edges, Edge{i, i + 1})
	}
	return edges
}

// DefaultStarChainSpokes is the spoke count used for an n-relation
// Star-Chain when the paper does not pin one down. It reproduces the
// paper's 15-relation shape exactly (10 spokes, 4 chain hops) and keeps the
// same roughly 5:2 spoke-to-chain proportion as n grows.
func DefaultStarChainSpokes(n int) int {
	s := (2*(n-1) + 2) / 3
	if s < 1 {
		s = 1
	}
	if s > n-1 {
		s = n - 1
	}
	return s
}

// SnowflakeEdges returns an n-relation snowflake: relation 0 is the fact
// table joined to dims dimension hubs (relations 1..dims), and the remaining
// n-1-dims outrigger relations attach to the dimension hubs round-robin —
// the normalized data-warehouse shape where each dimension is itself a small
// star. With one outrigger layer the graph is a two-level tree: denser in
// hubs than a star-chain, but far sparser than a clique, which is the regime
// where connected-subgraph enumeration pays off at widths beyond 25.
func SnowflakeEdges(n, dims int) []Edge {
	mustAtLeast(n, 3, "snowflake")
	if dims < 1 || dims > n-1 {
		panic(fmt.Sprintf("query: snowflake dims %d out of range [1,%d]", dims, n-1))
	}
	edges := make([]Edge, 0, n-1)
	for d := 1; d <= dims; d++ {
		edges = append(edges, Edge{0, d})
	}
	for i := dims + 1; i < n; i++ {
		owner := 1 + (i-dims-1)%dims
		edges = append(edges, Edge{owner, i})
	}
	return edges
}

// DefaultSnowflakeDims is the dimension-hub count for an n-relation
// snowflake when the caller does not pin one down: one hub per eight
// relations, at least two — a 40-relation snowflake gets 5 dimensions of
// ~7 outriggers each, the proportion of a warehouse fact table joined
// through a handful of deep dimensions.
func DefaultSnowflakeDims(n int) int {
	d := (n + 7) / 8
	if d < 2 {
		d = 2
	}
	if d > n-1 {
		d = n - 1
	}
	return d
}

// Example9Edges is the fixed nine-relation join graph of the paper's
// Figure 2.1: relation 1 (index 0) is a four-way hub over relations 2–5,
// a chain runs 5–6–7, and relation 7 (index 6) is a three-way hub over 6, 8
// and 9. Its root hubs are relations 1 and 7, as in the paper.
func Example9Edges() []Edge {
	return []Edge{
		{0, 1}, {0, 2}, {0, 3}, {0, 4}, // 1-2, 1-3, 1-4, 1-5
		{4, 5}, // 5-6
		{5, 6}, // 6-7
		{6, 7}, // 7-8
		{6, 8}, // 7-9
	}
}

func mustAtLeast(n, min int, kind string) {
	if n < min {
		panic(fmt.Sprintf("query: %s needs at least %d relations, got %d", kind, min, n))
	}
}

// Shape classifies the query's join graph at runtime into one of the
// paper's topology families: "single", "chain", "star", "star-chain",
// "tree", "cycle", "clique", or "other". Classification runs on the full
// adjacency — including implied (transitively closed) equality edges — so
// it reflects the graph the enumerator actually walks, which is also why a
// query constructed from ChainEdges can legitimately classify as "clique"
// when all its predicates share one equivalence class. A hub is a relation
// of degree ≥ 3, matching HubRels.
func (q *Query) Shape() string {
	n := q.NumRelations()
	if n == 1 {
		return "single"
	}
	var m, hubs, deg2, maxDeg int
	for i := 0; i < n; i++ {
		d := q.adj[i].Len()
		m += d
		if d > maxDeg {
			maxDeg = d
		}
		switch {
		case d >= 3:
			hubs++
		case d == 2:
			deg2++
		}
	}
	m /= 2 // each undirected edge counted from both ends
	switch {
	case m == n*(n-1)/2 && n >= 3:
		return "clique"
	case m == n-1: // tree (the query is connected by construction)
		switch {
		case hubs == 0:
			return "chain"
		case hubs == 1 && deg2 == 0:
			return "star"
		case hubs == 1:
			return "star-chain"
		default:
			return "tree"
		}
	case m == n && maxDeg == 2:
		return "cycle"
	default:
		return "other"
	}
}
