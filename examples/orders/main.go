// Orders: interesting orders in SDP. An ordered star query (ORDER BY on a
// join column) is optimized twice — once with SDP's interesting-order
// partitions active (the default) and once with pruning traced — showing
// how the extra partitions keep order-providing JCRs alive so the final
// plan can avoid a top-level sort (paper Section 2.1.4, Table 3.4).
package main

import (
	"fmt"
	"log"

	"sdpopt"
)

func main() {
	cat := sdpopt.PaperSchema()
	qs, err := sdpopt.Instances(sdpopt.WorkloadSpec{
		Cat:          cat,
		Topology:     sdpopt.Star,
		NumRelations: 12,
		Ordered:      true,
		Seed:         19,
	}, 1)
	if err != nil {
		log.Fatal(err)
	}
	q := qs[0]
	fmt.Println("Ordered query:")
	fmt.Println(q.SQL())
	fmt.Println()

	// DP reference.
	optimal, _, err := sdpopt.OptimizeDP(q, sdpopt.DPOptions{Budget: sdpopt.DefaultBudget})
	if err != nil {
		log.Fatal(err)
	}

	// SDP with pruning traced.
	var trace sdpopt.SDPTrace
	opts := sdpopt.SDPOptions()
	opts.Budget = sdpopt.DefaultBudget
	opts.Trace = &trace
	plan, _, err := sdpopt.OptimizeSDP(q, opts)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("DP  cost: %.2f\n", optimal.Cost)
	fmt.Printf("SDP cost: %.2f (%.4fx of optimal)\n\n", plan.Cost, plan.Cost/optimal.Cost)
	fmt.Println("SDP's final plan:")
	fmt.Println(sdpopt.Explain(q, plan))

	// Show the interesting-order partitions SDP added.
	fmt.Println("Interesting-order partitions formed during pruning:")
	found := false
	for _, lvl := range trace.Levels {
		for label, members := range lvl.Partitions {
			if len(label) >= 6 && label[:6] == "order:" {
				fmt.Printf("  level %d, partition %-9s: %d JCRs kept eligible for later ordered joins\n",
					lvl.Level, label, len(members))
				found = true
			}
		}
	}
	if !found {
		fmt.Println("  (none at this size — pruning never risked an order-providing JCR)")
	}
}
