package ce

import (
	"fmt"

	"sdpopt/internal/cost"
	"sdpopt/internal/dp"
	"sdpopt/internal/exec"
	"sdpopt/internal/obs"
	"sdpopt/internal/plan"
	"sdpopt/internal/workload"
)

// ExecReport validates the "true" cost model itself against ground truth:
// the re-costing step trusts the catalog statistics, so this pass executes
// a small query's optimal plan via internal/exec and compares every join
// node's actual row count with the true model's estimate. It also proves
// result equivalence: the plan chosen under the worst lie and the plan
// chosen under truth must produce identical result multisets.
type ExecReport struct {
	Graph   string `json:"graph"`
	MaxRows int    `json:"max_rows"`
	// JoinNodes is how many intermediate results were executed and
	// compared.
	JoinNodes int `json:"join_nodes"`
	// ModelQErr* summarize the true model's q-error against executed
	// cardinalities — how honest the "truth" used for ρ really is.
	ModelQErrP50 float64 `json:"model_qerr_p50"`
	ModelQErrP95 float64 `json:"model_qerr_p95"`
	ModelQErrMax float64 `json:"model_qerr_max"`
	// WorstBand is the error band whose chosen plan was executed for the
	// equivalence check.
	WorstBand float64 `json:"worst_band"`
	// FingerprintsMatch reports whether the worst-band plan and the true
	// plan produced identical result multisets.
	FingerprintsMatch bool `json:"fingerprints_match"`
}

// execValidate runs the execution pass on the paper's 9-relation example
// query — small enough to materialize every intermediate result.
func execValidate(cfg *Config) (*ExecReport, error) {
	q, err := workload.Example9(cfg.Cat)
	if err != nil {
		return nil, err
	}
	params := cost.DefaultParams()
	pTrue, _, err := dp.Optimize(q, dp.Options{Model: cost.NewModel(q, params), Budget: cfg.Budget})
	if err != nil {
		return nil, err
	}
	db, err := exec.Generate(q, cfg.Seed, cfg.ExecMaxRows)
	if err != nil {
		return nil, err
	}

	// Execute every join subtree of the true-optimal plan and q-error the
	// true model's cardinality against the actual row count.
	var joins []*plan.Plan
	collectJoins(pTrue, &joins)
	var qerrs []float64
	ob := obs.Or(cfg.Obs)
	for _, j := range joins {
		t, err := db.Run(j)
		if err != nil {
			return nil, fmt.Errorf("executing %v: %w", j.Rels, err)
		}
		qe := qerror(j.Rows, float64(t.NumRows()))
		qerrs = append(qerrs, qe)
		ob.FloatHistogram(obs.MCEExecQError, nil).Observe(qe)
	}

	// Result equivalence under the worst lie: optimization may pick a
	// different join order, but the answer must be the same multiset.
	worst := maxOf(cfg.Bands)
	inj, err := NewInjector(q, nil, worst, cfg.Seed, cfg.Mode)
	if err != nil {
		return nil, err
	}
	pLie, _, err := dp.Optimize(q, dp.Options{Model: cost.NewModelEst(q, params, inj), Budget: cfg.Budget})
	if err != nil {
		return nil, err
	}
	tTrue, err := db.Run(pTrue)
	if err != nil {
		return nil, err
	}
	tLie, err := db.Run(pLie)
	if err != nil {
		return nil, err
	}

	return &ExecReport{
		Graph:             "Example-9",
		MaxRows:           cfg.ExecMaxRows,
		JoinNodes:         len(joins),
		ModelQErrP50:      quantile(qerrs, 0.5),
		ModelQErrP95:      quantile(qerrs, 0.95),
		ModelQErrMax:      maxOf(qerrs),
		WorstBand:         worst,
		FingerprintsMatch: tTrue.Fingerprint() == tLie.Fingerprint(),
	}, nil
}

func collectJoins(p *plan.Plan, out *[]*plan.Plan) {
	if p == nil {
		return
	}
	if p.Op.IsJoin() {
		*out = append(*out, p)
	}
	collectJoins(p.Left, out)
	collectJoins(p.Right, out)
}
