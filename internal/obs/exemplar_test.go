package obs

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func TestHistogramExemplars(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("sdpopt_test_seconds")
	h.ObserveExemplar(2*time.Millisecond, "aaaa")
	h.ObserveExemplar(3*time.Second, "bbbb")
	h.Observe(time.Millisecond) // plain observation, no exemplar

	exs := h.Exemplars()
	if len(exs) != 2 {
		t.Fatalf("Exemplars() = %d, want 2", len(exs))
	}
	ids := map[string]time.Duration{}
	for _, ex := range exs {
		ids[ex.TraceID] = ex.Value
	}
	if ids["aaaa"] != 2*time.Millisecond || ids["bbbb"] != 3*time.Second {
		t.Fatalf("exemplars = %v", ids)
	}

	// A later observation in the same bucket replaces the exemplar.
	h.ObserveExemplar(2500*time.Microsecond, "cccc")
	found := false
	for _, ex := range h.Exemplars() {
		if ex.TraceID == "aaaa" {
			t.Error("replaced exemplar still present")
		}
		if ex.TraceID == "cccc" {
			found = true
		}
	}
	if !found {
		t.Error("replacing exemplar missing")
	}

	// Registry-wide view carries metric name and bucket bound.
	infos := r.Exemplars()
	if len(infos) != 2 {
		t.Fatalf("Registry.Exemplars() = %d, want 2", len(infos))
	}
	for _, info := range infos {
		if info.Metric != "sdpopt_test_seconds" || info.LE == "" || info.TraceID == "" {
			t.Fatalf("bad ExemplarInfo: %+v", info)
		}
	}

	// An empty trace ID degrades to Observe.
	var nilH *Histogram
	nilH.ObserveExemplar(time.Second, "x")
	if nilH.Exemplars() != nil {
		t.Error("nil histogram returned exemplars")
	}
}

// TestExemplarExposition checks exemplars appear only in the OpenMetrics
// text (with the # EOF terminator) and never in the classic 0.0.4 format,
// which strict parsers would reject.
func TestExemplarExposition(t *testing.T) {
	r := NewRegistry()
	r.Histogram("sdpopt_test_seconds").ObserveExemplar(5*time.Millisecond, "deadbeef")

	var classic, om bytes.Buffer
	if err := r.WritePrometheus(&classic); err != nil {
		t.Fatal(err)
	}
	if err := r.WriteOpenMetrics(&om); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(classic.String(), "deadbeef") {
		t.Error("classic exposition leaked an exemplar")
	}
	if !strings.Contains(om.String(), `# {trace_id="deadbeef"}`) {
		t.Errorf("OpenMetrics exposition missing exemplar:\n%s", om.String())
	}
	if !strings.HasSuffix(strings.TrimSpace(om.String()), "# EOF") {
		t.Error("OpenMetrics exposition missing # EOF")
	}
}

// TestObserverFlush checks Flush pushes buffered JSONL events to disk
// without closing the sink — the server's graceful-shutdown drain.
func TestObserverFlush(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.jsonl")
	sink, err := OpenJSONL(path)
	if err != nil {
		t.Fatal(err)
	}
	o := New(sink)
	o.Emit("test.event", map[string]any{"k": 1})

	if err := o.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(raw), "test.event") {
		t.Fatalf("event not on disk after Flush: %q", raw)
	}

	// The sink stays usable after Flush.
	o.Emit("test.second", nil)
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}
	raw, _ = os.ReadFile(path)
	if !strings.Contains(string(raw), "test.second") {
		t.Fatal("post-Flush event lost")
	}

	// Nil-safety: a sink-less observer and a nil observer both flush clean.
	if err := New().Flush(); err != nil {
		t.Fatal(err)
	}
	var nilO *Observer
	if err := nilO.Flush(); err != nil {
		t.Fatal(err)
	}
}
