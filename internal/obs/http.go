package obs

import (
	"expvar"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"strings"
)

// Handler returns an http.Handler exposing the registry and the Go runtime
// profiling surface:
//
//	/metrics      Prometheus text exposition of the registry
//	/debug/vars   expvar (cmdline, memstats)
//	/debug/pprof  net/http/pprof profiles (heap, cpu, goroutine, ...)
//
// pprof and expvar are wired explicitly onto a private mux so the endpoint
// works regardless of http.DefaultServeMux state.
func (r *Registry) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, req *http.Request) {
		// Exemplars are only legal in the OpenMetrics exposition, so the
		// classic text format stays exemplar-free for strict 0.0.4 parsers.
		if strings.Contains(req.Header.Get("Accept"), "application/openmetrics-text") {
			w.Header().Set("Content-Type", "application/openmetrics-text; version=1.0.0; charset=utf-8")
			r.WriteOpenMetrics(w)
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WritePrometheus(w)
	})
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/", func(w http.ResponseWriter, req *http.Request) {
		fmt.Fprint(w, "sdpopt observability endpoint\n/metrics\n/debug/vars\n/debug/pprof/\n")
	})
	return mux
}

// Serve starts an HTTP server for the registry on addr (e.g. ":8080") in a
// background goroutine, returning the bound address — useful with ":0".
// The server lives until process exit; it exists to watch long experiment
// runs live, not to be managed.
func (r *Registry) Serve(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("obs: metrics listener: %w", err)
	}
	srv := &http.Server{Handler: r.Handler()}
	go srv.Serve(ln)
	return ln.Addr().String(), nil
}
