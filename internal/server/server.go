// Package server exposes the optimizer as a service: an HTTP JSON API that
// accepts SQL (or an explicit query-JSON shape), dispatches to any of the
// repository's optimization techniques, and serves repeated query shapes
// from a plan cache keyed by canonical fingerprint.
//
// The serving layer adds the production concerns the library deliberately
// leaves out:
//
//   - admission control — a semaphore bounds concurrently executing
//     optimizations, a queue-depth limit bounds waiting ones, and overflow
//     is shed with 429 instead of letting join enumeration (whose memory
//     and CPU appetite grows super-polynomially with query size) pile up;
//   - deadlines — a per-request timeout becomes a context deadline threaded
//     into the engines' cancellation path, mapped to 504, distinct from the
//     paper's memory-budget abort, which is a well-defined optimizer
//     outcome and maps to 200 with budget_exceeded set; cache-filling
//     computes are shared property and run detached from the triggering
//     request, under the server-wide timeout and default budget;
//   - caching — results are keyed by fingerprint × technique × catalog
//     version (see internal/plancache), so only the first arrival of a
//     query shape pays for enumeration; plans are stored in the canonical
//     query frame and relabeled into each requester's relation numbering,
//     so a hit from an equivalently-shaped but differently-ordered spelling
//     still names the right relations;
//   - observability — requests, sheds, in-flight and queue gauges, and a
//     latency histogram split by cache source flow through internal/obs and
//     are exposed on the same listener at /metrics. Every request also
//     carries a request-scoped span tree (internal/obs/span) into the
//     engines; a flight recorder retains recent and slow/error traces at
//     /debug/requests (HTML) and /debug/flight.json (machine-readable), and
//     the latency histograms attach trace-ID exemplars so an outlier bucket
//     links straight back to the request that landed in it.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"runtime"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"sdpopt/internal/catalog"
	"sdpopt/internal/dp"
	"sdpopt/internal/feedback"
	"sdpopt/internal/memo"
	"sdpopt/internal/obs"
	"sdpopt/internal/obs/regret"
	"sdpopt/internal/obs/span"
	"sdpopt/internal/parse"
	"sdpopt/internal/plan"
	"sdpopt/internal/plancache"
	"sdpopt/internal/query"
	"sdpopt/internal/route"
)

// maxBodyBytes bounds /optimize request bodies; query descriptions are
// small, so anything larger is a client error, not a big query.
const maxBodyBytes = 1 << 20

// Options configures a Server.
type Options struct {
	// Cat is the schema the server optimizes against. Required.
	Cat *catalog.Catalog
	// Cache, if non-nil, serves repeated fingerprints without
	// re-optimizing.
	Cache *plancache.Cache
	// Obs receives server and cache telemetry; when set, its registry is
	// also mounted on the server's listener (/metrics, /debug/...).
	Obs *obs.Observer
	// MaxConcurrent bounds optimizations executing at once (default 8).
	MaxConcurrent int
	// MaxQueue bounds requests waiting for an execution slot (default
	// 2×MaxConcurrent); beyond it requests are shed with 429.
	MaxQueue int
	// Budget is the default memory-feasibility budget per optimization
	// (default memo.DefaultBudget, the paper's 1 GB); requests may lower
	// or raise it via budget_mb. Cache-filling computes always run under
	// this default — a budget_mb override routes the request down the
	// uncached path (see OptimizeRequest.BudgetMB).
	Budget int64
	// Timeout caps every optimization's wall time (default 30s); requests
	// may shorten it via timeout_ms but never exceed it. The shortened
	// deadline applies to uncached optimizations only: a cache-filling
	// compute is shared property and always runs under the full Timeout,
	// detached from the request that happened to trigger it.
	Timeout time.Duration
	// Workers is the default enumeration worker count for the DP-substrate
	// techniques (sdp, dp, dp/ld): 0 or 1 runs the sequential engine, >1 the
	// parallel engine. Requests may override it via the workers field within
	// [1, 2×GOMAXPROCS]. Because the parallel engine is plan-identical to
	// the sequential one, this knob never changes what is computed or
	// cached — only the latency of a miss.
	Workers int
	// Flight sizes the flight recorder (ring capacities and slow-trace
	// pinning threshold); the zero value gives the span-package defaults
	// (64 recent + 64 notable, 1s). The recorder is always on — span
	// tracing costs a few allocations per request, not per plan — and is
	// served at /debug/requests and /debug/flight.json.
	Flight span.RecorderOptions
	// Regret, when non-nil, enables the sampling shadow optimizer: a
	// fraction of served plans is re-optimized in the background with a
	// reference technique and the cost ratios are aggregated at
	// /debug/regret (see internal/obs/regret). The server fills in the
	// Optimize hook and, when unset, Obs and Flight; every other knob
	// (rates, pool sizing, dedup window) is the caller's.
	Regret *regret.Options
	// Route configures the SLO-aware technique router behind
	// technique:"auto" (see internal/route); the zero value selects the
	// router defaults. The router is always constructed — explicit
	// requests feed its latency profiles too, and /debug/routes is always
	// served — and when Regret is enabled its sample stream is wired into
	// the router's regret-feedback loop.
	Route route.Options
	// Feedback, when non-nil, enables the cardinality-feedback ledger:
	// estimate-vs-actual telemetry aggregated per catalog object, served at
	// /debug/cardinality, and fed back into the router's staleness
	// demotion. Execution sampling — the part that actually produces
	// actuals — is separately gated on FeedbackOptions.SampleRate.
	Feedback *FeedbackOptions
}

// FeedbackOptions wires the cardinality-feedback subsystem (see
// internal/feedback) into a server. The ledger and its debug surface are
// always constructed; the exec-sampling path that feeds them runs only at
// SampleRate > 0 — executing plans, even over scaled-down synthetic data,
// is orders of magnitude more work than optimizing them.
type FeedbackOptions struct {
	// Ledger sizes the rolling windows and the staleness threshold (zero
	// value: the feedback package defaults — window 64, min 3 observations,
	// stale at score 0.5). Obs is filled in from the server's observer.
	Ledger feedback.LedgerOptions
	// SampleRate is the fraction of successfully served plans executed
	// over synthetic data off the measured path, in [0, 1]. Default 0:
	// exec sampling is strictly opt-in.
	SampleRate float64
	// MaxRels and MaxRows bound sampling eligibility (defaults 8 relations
	// and 2000 base rows): beyond either, a query's plan is never executed.
	MaxRels int
	MaxRows int
	// LogPath, when set, appends every observation to a JSONL corpus —
	// the replayable record that internal/ce's empirical-error mode and
	// `sdplab robust -feedback` consume.
	LogPath string
}

// Server is the optimizer-as-a-service HTTP layer. Construct with New.
type Server struct {
	cat        *catalog.Catalog
	catVersion string
	cache      *plancache.Cache
	ob         *obs.Observer
	budget     int64
	timeout    time.Duration
	maxQueue   int
	workers    int

	flight  *span.Recorder
	shadow  *regret.Shadow
	router  *route.Router
	ledger  *feedback.Ledger
	sampler *feedback.Sampler
	corpus  *feedback.CorpusWriter

	sem      chan struct{} // executing-slot semaphore
	pending  atomic.Int64  // executing + queued
	inFlight atomic.Int64

	gInFlight *obs.Gauge
	gQueue    *obs.Gauge
	cShed     *obs.Counter

	httpSrv *http.Server
}

// New validates opts and builds a server.
func New(opts Options) (*Server, error) {
	if opts.Cat == nil {
		return nil, errors.New("server: Options.Cat is required")
	}
	if opts.MaxConcurrent <= 0 {
		opts.MaxConcurrent = 8
	}
	if opts.MaxQueue <= 0 {
		opts.MaxQueue = 2 * opts.MaxConcurrent
	}
	if opts.Budget == 0 {
		opts.Budget = memo.DefaultBudget
	}
	if opts.Timeout <= 0 {
		opts.Timeout = 30 * time.Second
	}
	if max := maxWorkers(); opts.Workers < 0 || opts.Workers > max {
		return nil, fmt.Errorf("server: Options.Workers %d outside [0, %d]", opts.Workers, max)
	}
	s := &Server{
		cat:        opts.Cat,
		catVersion: opts.Cat.Fingerprint(),
		cache:      opts.Cache,
		ob:         opts.Obs,
		budget:     opts.Budget,
		timeout:    opts.Timeout,
		maxQueue:   opts.MaxQueue,
		workers:    opts.Workers,
		flight:     span.NewRecorder(opts.Flight),
		router:     route.New(opts.Route),
		sem:        make(chan struct{}, opts.MaxConcurrent),
	}
	if s.ob != nil {
		s.gInFlight = s.ob.Gauge(obs.MServerInFlight)
		s.gQueue = s.ob.Gauge(obs.MServerQueue)
		s.cShed = s.ob.Counter(obs.MServerShed)
		obs.RegisterBuildInfo(s.ob.Registry)
	}
	if opts.Regret != nil {
		ro := *opts.Regret
		ro.Optimize = OptimizeTraced
		// Hand the shadow the catalog version computed above so not even
		// the first sampled serve re-hashes the catalog on the request path.
		if ro.CatalogVersion == "" {
			ro.CatalogVersion = s.catVersion
		}
		if ro.Obs == nil {
			ro.Obs = s.ob
		}
		if ro.Flight == nil {
			ro.Flight = s.flight
		}
		// The router rides the shadow's sample stream: every measured
		// ratio updates the matching (tech, shape, band) regret EWMA, so a
		// cheap route whose ρ degrades is demoted without any extra
		// shadow work. A caller-supplied hook still runs after.
		if user := ro.OnSample; user != nil {
			ro.OnSample = func(tech, shape, band string, ratio float64) {
				s.router.NoteRegret(tech, shape, band, ratio)
				user(tech, shape, band, ratio)
			}
		} else {
			ro.OnSample = s.router.NoteRegret
		}
		shadow, err := regret.New(ro)
		if err != nil {
			return nil, err
		}
		s.shadow = shadow
	}
	if opts.Feedback != nil {
		fo := *opts.Feedback
		lo := fo.Ledger
		if lo.Obs == nil {
			lo.Obs = s.ob
		}
		s.ledger = feedback.NewLedger(lo)
		if fo.LogPath != "" {
			cw, err := feedback.OpenCorpus(fo.LogPath)
			if err != nil {
				return nil, fmt.Errorf("server: %w", err)
			}
			s.corpus = cw
		}
		if fo.SampleRate > 0 {
			sampler, err := feedback.NewSampler(feedback.SamplerOptions{
				Ledger:  s.ledger,
				Corpus:  s.corpus,
				Obs:     s.ob,
				Rate:    fo.SampleRate,
				MaxRels: fo.MaxRels,
				MaxRows: fo.MaxRows,
			})
			if err != nil {
				return nil, err
			}
			s.sampler = sampler
		}
	}
	return s, nil
}

// OptimizeRequest is the POST /optimize body. Exactly one of SQL and Query
// must be set.
type OptimizeRequest struct {
	// SQL is a SELECT over catalog relations (see internal/parse for the
	// accepted dialect).
	SQL string `json:"sql,omitempty"`
	// Query is the explicit join-graph shape, for clients that already
	// hold a structural representation.
	Query *QuerySpec `json:"query,omitempty"`
	// Technique selects the optimizer (see Techniques); empty means "sdp".
	Technique string `json:"technique,omitempty"`
	// BudgetMB overrides the server's memory-feasibility budget, in MB.
	// Overriding takes the uncached path (no lookup, no fill): cached
	// entries are always computed under the server's default budget, so
	// identical requests get identical outcomes regardless of which budget
	// an earlier caller happened to use.
	BudgetMB int64 `json:"budget_mb,omitempty"`
	// TimeoutMS shortens the server's optimization deadline, in ms. The
	// shortened deadline binds uncached optimizations only; a request that
	// triggers or joins a shared cache-filling compute waits for that
	// compute, which runs under the server-wide timeout — one caller's
	// short deadline never poisons the entry served to coalesced waiters.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
	// Workers overrides the server's enumeration worker count for the
	// DP-substrate techniques (sdp, dp, dp/ld). Must lie in
	// [1, 2×GOMAXPROCS]; anything outside is rejected with 400 rather than
	// silently clamped, so a misconfigured client learns about it. The
	// override binds the uncached path only: a cache-filling compute is
	// shared property and always runs with the server's default workers —
	// harmless, since the parallel engine is plan-identical and the worker
	// count can never change what gets cached.
	Workers int `json:"workers,omitempty"`
	// NoCache bypasses the plan cache for this request (no lookup, no
	// fill).
	NoCache bool `json:"no_cache,omitempty"`
	// Explain includes the full EXPLAIN rendering in the response.
	Explain bool `json:"explain,omitempty"`
}

// QuerySpec is the query-JSON shape: catalog relation indexes joined by
// equi-join predicates over query-local indexes, plus optional filters and
// ORDER BY — a direct serialization of query.New's arguments.
type QuerySpec struct {
	Rels    []int        `json:"rels"`
	Preds   []PredSpec   `json:"preds"`
	Filters []FilterSpec `json:"filters,omitempty"`
	OrderBy *OrderSpec   `json:"order_by,omitempty"`
}

// PredSpec is one equi-join predicate between query-local relations.
type PredSpec struct {
	LeftRel  int `json:"left_rel"`
	LeftCol  int `json:"left_col"`
	RightRel int `json:"right_rel"`
	RightCol int `json:"right_col"`
}

// FilterSpec is one local range selection "col < bound".
type FilterSpec struct {
	Rel   int   `json:"rel"`
	Col   int   `json:"col"`
	Bound int64 `json:"bound"`
}

// OrderSpec requests sorted output on one relation column.
type OrderSpec struct {
	Rel int `json:"rel"`
	Col int `json:"col"`
}

// StatsJSON is the optimization-overhead block of an OptimizeResponse.
type StatsJSON struct {
	ElapsedNS      int64   `json:"elapsed_ns"`
	PlansCosted    int64   `json:"plans_costed"`
	PeakSimMB      float64 `json:"peak_sim_mb"`
	ClassesCreated int64   `json:"classes_created"`
}

// OptimizeResponse is the POST /optimize reply.
type OptimizeResponse struct {
	// Technique is the engine that actually ran — for technique:"auto"
	// requests, the router's (possibly demoted) choice.
	Technique string `json:"technique"`
	// RouteReason explains how Technique was chosen: "explicit" for
	// requests that named an engine, or one of the router's auto:*
	// reasons (fast path, default, heavy tail, regret promotion, deadline
	// downgrade, mid-flight demotion).
	RouteReason    string `json:"route_reason,omitempty"`
	Fingerprint    string `json:"fingerprint"`
	CatalogVersion string `json:"catalog_version"`
	// Source reports how the result was produced: "hit", "dedup", "miss",
	// or "uncached" (cache bypassed or absent).
	Source  string   `json:"source"`
	Cached  bool     `json:"cached"`
	Rels    []string `json:"rels,omitempty"`
	Cost    float64  `json:"cost,omitempty"`
	Shape   string   `json:"shape,omitempty"`
	Explain string   `json:"explain,omitempty"`
	// BudgetExceeded marks the paper's infeasible ("*") outcome: the
	// optimization exceeded its memory budget. The request itself
	// succeeded (HTTP 200) — infeasibility is a measured result.
	BudgetExceeded bool       `json:"budget_exceeded,omitempty"`
	Error          string     `json:"error,omitempty"`
	Stats          *StatsJSON `json:"stats,omitempty"`
	ServerNS       int64      `json:"server_ns"`
}

// Handler returns the server's HTTP routes: POST /optimize, GET /healthz,
// GET /catalog, the flight recorder (/debug/requests, /debug/flight.json —
// always on), and — when an observer is configured — the metrics surface
// (/metrics, /debug/vars, /debug/pprof/).
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/optimize", s.handleOptimize)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/catalog", s.handleCatalog)
	// Exact paths outrank the /debug/ subtree below, so the flight
	// recorder coexists with pprof/expvar on one listener.
	mux.HandleFunc("/debug", s.handleDebugIndex)
	mux.Handle("/debug/requests", s.flight.RequestsHandler(s.registry()))
	mux.Handle("/debug/flight.json", s.flight.FlightHandler())
	if s.shadow != nil {
		mux.Handle("/debug/regret", s.shadow.Handler())
		mux.Handle("/debug/regret.json", s.shadow.JSONHandler())
	}
	mux.Handle("/debug/routes", s.router.Handler())
	mux.Handle("/debug/routes.json", s.router.JSONHandler())
	if s.ledger != nil {
		mux.Handle("/debug/cardinality", s.ledger.Handler(s.sampler))
		mux.Handle("/debug/cardinality.json", s.ledger.JSONHandler(s.sampler))
	}
	if s.ob != nil && s.ob.Registry != nil {
		oh := s.ob.Registry.Handler()
		mux.Handle("/metrics", oh)
		mux.Handle("/debug/", oh)
	}
	return mux
}

// handleDebugIndex serves /debug: one page listing every debug surface this
// server actually mounts, so an operator landing on a live instance can see
// what is observable without reading the source.
func (s *Server) handleDebugIndex(w http.ResponseWriter, r *http.Request) {
	type entry struct{ path, desc string }
	entries := []entry{
		{"/debug/requests", "flight recorder: recent and slow/error request traces (HTML)"},
		{"/debug/flight.json", "flight recorder, machine-readable"},
		{"/debug/routes", "technique router: decision table, latency and regret profiles (HTML; .json twin)"},
	}
	if s.shadow != nil {
		entries = append(entries, entry{"/debug/regret", "shadow re-optimization regret: served-vs-reference plan cost ratios (HTML; .json twin)"})
	}
	if s.ledger != nil {
		entries = append(entries, entry{"/debug/cardinality", "cardinality feedback ledger: estimate-vs-actual q-errors and staleness per catalog object (HTML; .json twin)"})
	}
	if s.ob != nil && s.ob.Registry != nil {
		entries = append(entries,
			entry{"/metrics", "Prometheus metrics with trace-ID exemplars"},
			entry{"/debug/pprof/", "Go runtime profiles"},
			entry{"/debug/vars", "expvar"},
		)
	}
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	var b strings.Builder
	b.WriteString("<!DOCTYPE html><html><head><title>/debug</title><style>\n")
	b.WriteString("body{font-family:sans-serif;margin:1em 2em}td,th{padding:0.15em 0.8em;text-align:left;border-bottom:1px solid #eee}table{border-collapse:collapse}</style></head><body>\n")
	b.WriteString("<h1>sdpopt debug surfaces</h1>\n<table><tr><th>surface</th><th>what it shows</th></tr>\n")
	for _, e := range entries {
		fmt.Fprintf(&b, "<tr><td><a href=\"%s\">%s</a></td><td>%s</td></tr>\n", e.path, e.path, e.desc)
	}
	b.WriteString("</table>\n</body></html>\n")
	_, _ = w.Write([]byte(b.String()))
}

// registry returns the observer's metrics registry, or nil without one.
func (s *Server) registry() *obs.Registry {
	if s.ob == nil {
		return nil
	}
	return s.ob.Registry
}

// Flight returns the server's flight recorder.
func (s *Server) Flight() *span.Recorder { return s.flight }

// Regret returns the server's shadow optimizer, or nil when regret
// measurement is not configured.
func (s *Server) Regret() *regret.Shadow { return s.shadow }

// Router returns the server's technique router (always non-nil).
func (s *Server) Router() *route.Router { return s.router }

// FeedbackLedger returns the cardinality-feedback ledger, or nil when
// feedback is not configured.
func (s *Server) FeedbackLedger() *feedback.Ledger { return s.ledger }

// FeedbackSampler returns the exec sampler, or nil when exec sampling is
// not enabled.
func (s *Server) FeedbackSampler() *feedback.Sampler { return s.sampler }

// Start listens on addr (":0" for an ephemeral port) and serves in a
// background goroutine, returning the bound address.
func (s *Server) Start(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	s.httpSrv = &http.Server{Handler: s.Handler()}
	go func() { _ = s.httpSrv.Serve(ln) }()
	return ln.Addr().String(), nil
}

// Shutdown gracefully stops a Started server: the listener closes
// immediately, in-flight requests run to completion or until ctx expires.
// Buffered trace sinks are then drained, so the final events of requests
// completing during the grace period reach their JSONL files rather than
// dying in a bufio buffer.
func (s *Server) Shutdown(ctx context.Context) error {
	var err error
	if s.httpSrv != nil {
		err = s.httpSrv.Shutdown(ctx)
	}
	// The shadow pool stops after the listener drains: requests completing
	// during the grace period may still offer samples, and Close discards
	// queued shadow work rather than delaying shutdown on it.
	s.shadow.Close()
	// Same for the feedback sampler; its Close also flushes the corpus, so
	// closing the underlying file afterwards loses nothing.
	s.sampler.Close()
	if cerr := s.corpus.Close(); err == nil {
		err = cerr
	}
	if ferr := s.ob.Flush(); err == nil {
		err = ferr
	}
	return err
}

// InFlight returns the number of optimizations currently executing.
func (s *Server) InFlight() int { return int(s.inFlight.Load()) }

// Queued returns the number of admitted requests waiting for a slot.
func (s *Server) Queued() int {
	q := int(s.pending.Load()) - int(s.inFlight.Load())
	if q < 0 {
		q = 0
	}
	return q
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.writeJSON(w, r, http.StatusOK, map[string]any{
		"status":          "ok",
		"catalog_version": s.catVersion,
		"in_flight":       s.InFlight(),
		"queued":          s.Queued(),
		"cache_entries":   s.cache.Len(),
		"techniques":      RequestTechniques(),
	})
}

func (s *Server) handleCatalog(w http.ResponseWriter, r *http.Request) {
	s.writeJSON(w, r, http.StatusOK, map[string]any{
		"version": s.catVersion,
		"catalog": s.cat,
	})
}

func (s *Server) handleOptimize(w http.ResponseWriter, r *http.Request) {
	started := time.Now()
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		s.failf(w, r, http.StatusMethodNotAllowed, "POST required")
		return
	}
	var req OptimizeRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		s.failf(w, r, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	if !KnownRequestTechnique(req.Technique) {
		s.failf(w, r, http.StatusBadRequest, "unknown technique %q (valid: %v)", req.Technique, RequestTechniques())
		return
	}
	if max := maxWorkers(); req.Workers != 0 && (req.Workers < 1 || req.Workers > max) {
		s.failf(w, r, http.StatusBadRequest, "workers %d outside [1, %d] (2×GOMAXPROCS)", req.Workers, max)
		return
	}
	q, err := s.buildQuery(&req)
	if err != nil {
		s.failf(w, r, http.StatusBadRequest, "%v", err)
		return
	}

	// Tracing: every valid optimize request gets a span tree in the flight
	// recorder. A well-formed W3C traceparent header adopts the caller's
	// trace ID; our ID (theirs or a fresh one) is echoed back either way so
	// the client can fish the trace out of /debug/flight.json later.
	root := span.FromTraceparent(r.Header.Get("traceparent"), "request")
	w.Header().Set("traceparent", root.Trace().Traceparent())
	s.flight.Start(root)

	// Admission: bound executing + queued; shed the rest before they tie
	// up a connection waiting for a slot that is many optimizations away.
	pending := s.pending.Add(1)
	if pending > int64(cap(s.sem)+s.maxQueue) {
		s.pending.Add(-1)
		s.cShed.Add(1)
		// No queue.wait span and no queue-histogram sample: a shed request
		// never waited, and folding its zero into the wait distribution
		// would understate the very congestion that shed it.
		root.SetError("shed: server saturated")
		s.flight.Finish(root, http.StatusTooManyRequests)
		w.Header().Set("Retry-After", "1")
		s.failf(w, r, http.StatusTooManyRequests, "server saturated: %d executing, %d queued", cap(s.sem), s.maxQueue)
		return
	}
	s.gQueue.Set(s.pending.Load() - s.inFlight.Load())
	queued := time.Now()
	select {
	case s.sem <- struct{}{}:
	case <-r.Context().Done():
		s.pending.Add(-1)
		wait := time.Since(queued)
		root.ChildAt("queue.wait", queued, wait).SetError("client gone")
		s.observeQueueWait(wait, root.TraceID())
		root.SetError("client gone while queued")
		s.flight.Finish(root, statusClientGone)
		s.failf(w, r, statusClientGone, "client gone while queued")
		return
	}
	wait := time.Since(queued)
	root.ChildAt("queue.wait", queued, wait)
	s.observeQueueWait(wait, root.TraceID())
	s.gInFlight.Set(s.inFlight.Add(1))
	s.gQueue.Set(s.pending.Load() - s.inFlight.Load())
	defer func() {
		<-s.sem
		s.gInFlight.Set(s.inFlight.Add(-1))
		s.pending.Add(-1)
		s.gQueue.Set(s.pending.Load() - s.inFlight.Load())
	}()

	// Deadline: the request may shorten the server cap, never exceed it.
	timeout := s.timeout
	if req.TimeoutMS > 0 {
		if d := time.Duration(req.TimeoutMS) * time.Millisecond; d < timeout {
			timeout = d
		}
	}
	ctx, cancel := context.WithTimeout(r.Context(), timeout)
	defer cancel()
	ctx = span.NewContext(ctx, root)

	budget := s.budget
	if req.BudgetMB > 0 {
		budget = req.BudgetMB << 20
	}

	// Routing: explicit techniques pass straight through; "auto" asks the
	// router to pick from (relation count, topology, remaining deadline)
	// against its live latency and regret profiles. The decision runs
	// after admission so the remaining deadline it sees already accounts
	// for queue wait.
	rels := q.NumRelations()
	topo := q.Shape()
	technique := req.Technique
	if technique == "" {
		technique = "sdp"
	}
	routeReason := route.ReasonExplicit
	var reserve time.Duration
	if req.Technique == "auto" {
		remaining := time.Duration(0)
		if dl, ok := ctx.Deadline(); ok {
			remaining = time.Until(dl)
		}
		// The feedback coupling: the ledger's worst staleness over this
		// query's relations and predicates biases the router away from the
		// exhaustive-DP tier when the estimates it would exploit are known
		// to be lying. A few read-locked map lookups — cheap enough for the
		// request path.
		staleness := 0.0
		if s.ledger != nil {
			staleness = s.ledger.StalenessFor(feedback.QueryObjects(q))
		}
		dec := s.router.DecideObserved(rels, topo, remaining, staleness)
		technique, routeReason, reserve = dec.Technique, dec.Reason, dec.Reserve
	}
	routedTech := technique

	// Canonicalization (and the fingerprint digested from it) runs here,
	// inside the admission slot, so its bounded labeling search counts
	// against MaxConcurrent like any other per-request CPU work.
	cs := root.Child("canonicalize")
	cn := q.Canon()
	cs.SetAttr("truncated", cn.Truncated)
	cs.Finish()
	if cn.Truncated {
		if c := s.ob.Counter(obs.MServerCanonTruncated); c != nil {
			c.Add(1)
		}
	}
	resp := &OptimizeResponse{
		Technique:      technique,
		Fingerprint:    q.Fingerprint(),
		CatalogVersion: s.catVersion,
		Source:         "uncached",
	}

	var demoted string
	var best *plan.Plan
	var stats dp.Stats
	var src string
	if req.Technique == "auto" {
		best, stats, src, err, demoted = s.runRouted(ctx, technique, q, budget, &req, reserve)
		if demoted != "" {
			// The chosen engine's slice expired (or it aborted on budget)
			// and greedy answered instead. The inflated lower-bound
			// observation ratchets the engine's latency EWMA up so
			// repeated demotions turn into pre-flight downgrades.
			technique, routeReason = route.TechGreedy, demoted
			resp.Technique = technique
			s.router.Observe(routedTech, topo, route.Band(rels), timeout-reserve, true)
			if c := s.ob.Counter(obs.MRouteFallbacks); c != nil {
				c.Add(1)
			}
		}
	} else {
		best, stats, src, err = s.run(ctx, technique, q, budget, &req)
	}
	resp.Source = src
	resp.RouteReason = routeReason
	s.router.Count(technique, routeReason)
	if c := s.ob.Counter(obs.Label(obs.MRouteDecisions, "route", technique, "reason", routeReason, "source", src)); c != nil {
		c.Add(1)
	}
	if err == nil && (src == "uncached" || src == plancache.Miss.String()) {
		// Teach the router the measured engine latency. Hits and dedup
		// joins are excluded: they measure cache performance, and the fill
		// that computed them already reported its own elapsed time.
		s.router.Observe(technique, topo, route.Band(rels), stats.Elapsed, false)
	}

	code := http.StatusOK
	switch {
	case err == nil:
		resp.Cached = src == plancache.Hit.String() || src == plancache.Dedup.String()
		resp.Cost = best.Cost
		name := func(i int) string { return q.Relation(i).Name }
		resp.Shape = best.Shape(name)
		if req.Explain {
			resp.Explain = best.Explain(name)
		}
		for i := range q.Rels {
			resp.Rels = append(resp.Rels, name(i))
		}
	case errors.Is(err, memo.ErrBudget):
		// The paper's infeasible outcome: a valid measurement, not a
		// serving failure.
		resp.BudgetExceeded = true
		resp.Error = err.Error()
	case errors.Is(err, dp.ErrCanceled):
		code = http.StatusGatewayTimeout
		resp.Error = err.Error()
	default:
		code = http.StatusInternalServerError
		resp.Error = err.Error()
	}
	resp.Stats = &StatsJSON{
		ElapsedNS:      stats.Elapsed.Nanoseconds(),
		PlansCosted:    stats.PlansCosted,
		PeakSimMB:      float64(stats.Memo.PeakSimBytes) / (1 << 20),
		ClassesCreated: stats.Memo.ClassesCreated,
	}
	resp.ServerNS = time.Since(started).Nanoseconds()
	root.SetAttr("technique", technique)
	root.SetAttr("route_reason", routeReason)
	root.SetAttr("source", src)
	root.SetAttr("fingerprint", resp.Fingerprint)
	if err != nil {
		root.SetError(err.Error())
	}
	if h := s.ob.Histogram(obs.Label(obs.MServerSeconds, "source", src)); h != nil {
		// The exemplar ties an extreme latency bucket to this trace ID, so
		// the slow request behind a histogram outlier is one flight-recorder
		// lookup away.
		h.ObserveExemplar(time.Since(started), root.TraceID())
	}
	if demoted != "" {
		// A demotion is exactly the trace worth keeping: pin it into the
		// recorder's notable ring so the engine run that blew its slice
		// survives fast traffic.
		s.flight.Pin(root, code)
	} else {
		s.flight.Finish(root, code)
	}
	s.writeJSON(w, r, code, resp)
	// The shadow offer runs after the response bytes have left the server —
	// net/http buffers small bodies until the handler returns, so an
	// explicit flush is what actually puts the response on the wire before
	// any shadow cost is paid. Failed or infeasible optimizations have no
	// plan to measure.
	if f, ok := w.(http.Flusher); ok {
		f.Flush()
	}
	if err == nil {
		s.shadow.Observe(regret.Sample{
			Query:       q,
			Technique:   technique,
			Plan:        best,
			Source:      src,
			TraceID:     root.TraceID(),
			RouteReason: routeReason,
		})
		// Same contract as the shadow: the exec sampler sees every
		// successful serve after the response is on the wire, and decides
		// internally (rate gate, eligibility, dedup) whether to execute.
		s.sampler.Observe(feedback.Sample{
			Query:     q,
			Plan:      best,
			Technique: technique,
			TraceID:   root.TraceID(),
		})
	}
}

// observeQueueWait records semaphore-admission wait separately from compute
// time. 429 sheds never reach it, so the histogram measures only time spent
// actually queued, and the exemplar names the trace that waited longest.
func (s *Server) observeQueueWait(d time.Duration, traceID string) {
	if h := s.ob.Histogram(obs.MServerQueueSeconds); h != nil {
		h.ObserveExemplar(d, traceID)
	}
}

// run executes (or serves from cache) one optimization, returning the
// cache-source label.
//
// The uncached path (no cache configured, no_cache set, or a budget_mb
// override) runs under the request's own deadline and budget. The cached
// path treats the compute as shared property: it runs under a context
// detached from the request that happened to arrive first — bounded by the
// server-wide timeout — and under the server default budget, so one
// caller's short deadline or unusual budget never determines the outcome
// served to coalesced waiters and later hits.
//
// Cached plans are stored in the query's canonical frame: a hit may come
// from a semantically equivalent but differently-ordered spelling, whose
// query-local relation indexes and order-class ids mean different relations
// than the requester's. Each compute relabels its plan into the canonical
// frame before the cache stores it, and every result is relabeled back into
// the requesting query's frame before rendering.
func (s *Server) run(ctx context.Context, technique string, q *query.Query, budget int64, req *OptimizeRequest) (*plan.Plan, dp.Stats, string, error) {
	workers := s.workers
	if req.Workers != 0 {
		workers = req.Workers
	}
	if s.cache == nil || req.NoCache || budget != s.budget {
		p, st, err := OptimizeTraced(ctx, technique, q, budget, workers, s.ob)
		return p, st, "uncached", err
	}
	cn := q.Canon()
	key := plancache.Key{Fingerprint: q.Fingerprint(), Technique: technique, CatalogVersion: s.catVersion}
	p, st, src, err := s.cache.DoCtx(ctx, key, func() (*plan.Plan, dp.Stats, error) {
		// WithoutCancel detaches the compute from the request's deadline but
		// keeps context values, so the request span still reaches the
		// engines and the trace shows the enumeration it happened to fund.
		cctx, cancel := context.WithTimeout(context.WithoutCancel(ctx), s.timeout)
		defer cancel()
		// Shared compute, server-default workers: the request's override is
		// a latency preference, and worker count cannot change the plan.
		p, st, err := OptimizeTraced(cctx, technique, q, s.budget, s.workers, s.ob)
		if err != nil {
			return nil, st, err
		}
		return p.Remap(cn.RelTo, cn.EqTo), st, nil
	})
	if err != nil {
		return nil, st, src.String(), err
	}
	return p.Remap(cn.RelFrom, cn.EqFrom), st, src.String(), nil
}

// runRouted executes a router-chosen technique with the mid-flight fallback
// armed: the engine runs with the deadline pulled in by reserve, and when
// that slice expires — or the engine aborts on its memory budget — while
// the request itself still has time, greedy answers instead. demoted names
// the fallback reason ("" when the engine's own result was served).
//
// The engine runs in its own goroutine because the cached path cannot be
// interrupted from here: a dedup waiter blocks until the shared fill
// completes, and the fill itself is detached property running under the
// server-wide timeout. On demotion that work is abandoned, not canceled —
// it keeps running (bounded by the server timeout), fills the cache for
// later arrivals, and its result is discarded through the buffered channel.
func (s *Server) runRouted(ctx context.Context, technique string, q *query.Query, budget int64, req *OptimizeRequest, reserve time.Duration) (*plan.Plan, dp.Stats, string, error, string) {
	dl, ok := ctx.Deadline()
	if !ok || reserve <= 0 || technique == route.TechGreedy {
		// Nothing to fall back to (greedy is the floor) or no deadline to
		// guard: run directly.
		p, st, src, err := s.run(ctx, technique, q, budget, req)
		return p, st, src, err, ""
	}

	engineCtx, cancel := context.WithDeadline(ctx, dl.Add(-reserve))
	defer cancel()
	type result struct {
		p   *plan.Plan
		st  dp.Stats
		src string
		err error
	}
	ch := make(chan result, 1)
	go func() {
		p, st, src, err := s.run(engineCtx, technique, q, budget, req)
		ch <- result{p, st, src, err}
	}()

	demote := ""
	select {
	case res := <-ch:
		switch {
		case errors.Is(res.err, dp.ErrCanceled) && ctx.Err() == nil:
			// The slice expired, not the request: fall through to greedy.
			demote = route.ReasonDeadlineDemote
		case errors.Is(res.err, memo.ErrBudget):
			// Routed requests trade the paper's infeasible outcome for a
			// cheap plan — the caller asked for "auto", not for a specific
			// engine's feasibility verdict.
			demote = route.ReasonBudgetDemote
		default:
			return res.p, res.st, res.src, res.err, ""
		}
	case <-engineCtx.Done():
		if ctx.Err() != nil {
			// The request itself is dead; nothing to salvage.
			return nil, dp.Stats{}, "uncached", dp.CtxErr(ctx), ""
		}
		demote = route.ReasonDeadlineDemote
	}

	p, st, src, err := s.run(ctx, route.TechGreedy, q, budget, req)
	return p, st, src, err, demote
}

// buildQuery materializes the request's query from SQL or the explicit
// shape.
func (s *Server) buildQuery(req *OptimizeRequest) (*query.Query, error) {
	switch {
	case req.SQL != "" && req.Query != nil:
		return nil, errors.New("request carries both sql and query; send one")
	case req.SQL != "":
		return parse.SQL(s.cat, req.SQL)
	case req.Query != nil:
		spec := req.Query
		preds := make([]query.Pred, len(spec.Preds))
		for i, p := range spec.Preds {
			preds[i] = query.Pred{LeftRel: p.LeftRel, LeftCol: p.LeftCol, RightRel: p.RightRel, RightCol: p.RightCol}
		}
		filters := make([]query.Filter, len(spec.Filters))
		for i, f := range spec.Filters {
			filters[i] = query.Filter{Rel: f.Rel, Col: f.Col, Bound: f.Bound}
		}
		var ob *query.OrderSpec
		if spec.OrderBy != nil {
			ob = &query.OrderSpec{Rel: spec.OrderBy.Rel, Col: spec.OrderBy.Col}
		}
		return query.NewFiltered(s.cat, spec.Rels, preds, filters, ob)
	}
	return nil, errors.New("request carries neither sql nor query")
}

// statusClientGone is 499, nginx's "client closed request" — the client
// disconnected while queued, so no response will be read anyway.
const statusClientGone = 499

// maxWorkers is the upper bound on per-request (and server-default)
// enumeration workers: 2×GOMAXPROCS. Beyond the core count extra workers
// only add scheduling overhead; the small headroom accommodates callers
// tuned for a differently-sized deploy host.
func maxWorkers() int { return 2 * runtime.GOMAXPROCS(0) }

func (s *Server) failf(w http.ResponseWriter, r *http.Request, code int, format string, args ...any) {
	s.writeJSON(w, r, code, map[string]any{"error": fmt.Sprintf(format, args...)})
}

func (s *Server) writeJSON(w http.ResponseWriter, r *http.Request, code int, v any) {
	if c := s.ob.Counter(obs.Label(obs.MServerRequests, "route", r.URL.Path, "code", strconv.Itoa(code))); c != nil {
		c.Add(1)
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}
