package feedback

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
	"time"

	"sdpopt/internal/obs"
)

// ObjectSummary is one catalog object's ledger state in a Dump.
type ObjectSummary struct {
	// Object is the catalog-object key; Kind is relation or predicate.
	Object string `json:"object"`
	Kind   string `json:"kind"`
	// Count is the lifetime observation count; Window how many are in the
	// current rolling window.
	Count  int64 `json:"count"`
	Window int   `json:"window"`
	// Over/Under are the lifetime directional-bias counts: observations
	// where the estimate exceeded / undershot the actual.
	Over  int64 `json:"over"`
	Under int64 `json:"under"`
	// QErr* are q-error quantiles over the current window.
	QErrP50 float64 `json:"qerr_p50"`
	QErrP95 float64 `json:"qerr_p95"`
	QErrMax float64 `json:"qerr_max"`
	// Staleness is the derived score 1 − 1/geomean(qerr) ∈ [0, 1); Stale
	// flags objects at or above the ledger's threshold with enough
	// observations.
	Staleness float64 `json:"staleness"`
	Stale     bool    `json:"stale"`
	// LastEst/LastActual are the most recent observation, for display.
	LastEst    float64 `json:"last_est"`
	LastActual float64 `json:"last_actual"`
	// RecentQErr is the window's q-errors oldest-first — the sparkline.
	RecentQErr []float64 `json:"recent_qerr,omitempty"`
}

// SamplerCounts are the exec-sampler's lifetime counters.
type SamplerCounts struct {
	Observed  int64 `json:"observed"`
	Sampled   int64 `json:"sampled"`
	Skipped   int64 `json:"skipped"`
	Deduped   int64 `json:"deduped"`
	Dropped   int64 `json:"dropped"`
	Enqueued  int64 `json:"enqueued"`
	Completed int64 `json:"completed"`
	Failures  int64 `json:"failures"`
}

// LedgerConfig echoes the ledger sizing so a dump is self-describing.
type LedgerConfig struct {
	Window     int     `json:"window"`
	MinObs     int     `json:"min_obs"`
	StaleScore float64 `json:"stale_score"`
}

// Dump is the /debug/cardinality.json document.
type Dump struct {
	Time   time.Time    `json:"time"`
	Config LedgerConfig `json:"config"`
	// Observations is the ledger's lifetime observation count;
	// StaleObjects how many objects are currently flagged.
	Observations int64 `json:"observations"`
	StaleObjects int   `json:"stale_objects"`
	// Sampler carries the exec-sampler counters when sampling is enabled.
	Sampler *SamplerCounts `json:"sampler,omitempty"`
	// Objects are the per-object summaries, worst q-error first.
	Objects []ObjectSummary `json:"objects,omitempty"`
}

// Snapshot serializes the ledger (and optionally the sampler's counters).
// Nil-safe on both receivers; returns an empty dump for a nil ledger.
func (l *Ledger) Snapshot(s *Sampler) *Dump {
	d := &Dump{Time: time.Now()}
	if l == nil {
		return d
	}
	d.Config = LedgerConfig{Window: l.opts.Window, MinObs: l.opts.MinObs, StaleScore: l.opts.StaleScore}
	l.mu.RLock()
	d.Observations = l.total
	for key, st := range l.objects {
		window := st.windowOrdered()
		qerrs := make([]float64, len(window))
		for i, r := range window {
			if r < 1 {
				r = 1 / r
			}
			qerrs[i] = r
		}
		p50, p95, maxQ := obs.SummarizeWindow(qerrs)
		score := st.score()
		d.Objects = append(d.Objects, ObjectSummary{
			Object:     key,
			Kind:       st.kind,
			Count:      st.total,
			Window:     len(window),
			Over:       st.over,
			Under:      st.under,
			QErrP50:    p50,
			QErrP95:    p95,
			QErrMax:    maxQ,
			Staleness:  score,
			Stale:      st.total >= int64(l.opts.MinObs) && score >= l.opts.StaleScore,
			LastEst:    st.lastEst,
			LastActual: st.lastActual,
			RecentQErr: qerrs,
		})
		if st.total >= int64(l.opts.MinObs) && score >= l.opts.StaleScore {
			d.StaleObjects++
		}
	}
	l.mu.RUnlock()
	sort.Slice(d.Objects, func(i, j int) bool {
		a, b := d.Objects[i], d.Objects[j]
		if a.QErrP95 != b.QErrP95 {
			return a.QErrP95 > b.QErrP95 // worst estimates first
		}
		return a.Object < b.Object
	})
	if s != nil {
		d.Sampler = &SamplerCounts{
			Observed:  s.observed.Load(),
			Sampled:   s.sampled.Load(),
			Skipped:   s.skipped.Load(),
			Deduped:   s.deduped.Load(),
			Dropped:   s.dropped.Load(),
			Enqueued:  s.enqueued.Load(),
			Completed: s.completed.Load(),
			Failures:  s.failures.Load(),
		}
	}
	return d
}

// ReadDump decodes a /debug/cardinality.json document.
func ReadDump(r io.Reader) (*Dump, error) {
	var d Dump
	if err := json.NewDecoder(r).Decode(&d); err != nil {
		return nil, fmt.Errorf("feedback: decoding dump: %w", err)
	}
	return &d, nil
}

// sparkline renders values as a compact eight-level bar string, scaled so
// q-error 1 is the lowest bar and the window maximum the highest.
func sparkline(vals []float64) string {
	if len(vals) == 0 {
		return ""
	}
	bars := []rune("▁▂▃▄▅▆▇█")
	maxV := 1.0
	for _, v := range vals {
		if v > maxV {
			maxV = v
		}
	}
	var b strings.Builder
	for _, v := range vals {
		i := 0
		if maxV > 1 {
			i = int((v - 1) / (maxV - 1) * float64(len(bars)-1))
		}
		if i < 0 {
			i = 0
		}
		if i >= len(bars) {
			i = len(bars) - 1
		}
		b.WriteRune(bars[i])
	}
	return b.String()
}

// Render formats the dump as the text report `sdplab feedback` prints.
func (d *Dump) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "cardinality feedback: %d observations, %d objects (%d stale)\n",
		d.Observations, len(d.Objects), d.StaleObjects)
	fmt.Fprintf(&b, "ledger: window %d · min obs %d · stale at score ≥ %g (geomean q-error ≥ %g)\n",
		d.Config.Window, d.Config.MinObs, d.Config.StaleScore, staleQErr(d.Config.StaleScore))
	if d.Sampler != nil {
		fmt.Fprintf(&b, "sampler: %d observed, %d sampled, %d skipped, %d deduped, %d dropped, %d completed (%d failed)\n",
			d.Sampler.Observed, d.Sampler.Sampled, d.Sampler.Skipped, d.Sampler.Deduped,
			d.Sampler.Dropped, d.Sampler.Completed, d.Sampler.Failures)
	}
	if len(d.Objects) == 0 {
		b.WriteString("\nno observations yet\n")
		return b.String()
	}
	fmt.Fprintf(&b, "\n%-28s %-9s %6s %5s %5s %8s %8s %8s %6s %-6s %s\n",
		"object", "kind", "count", "over", "under", "qerr p50", "qerr p95", "qerr max", "stale", "flag", "window")
	for _, o := range d.Objects {
		flag := ""
		if o.Stale {
			flag = "STALE"
		}
		fmt.Fprintf(&b, "%-28s %-9s %6d %5d %5d %8.2f %8.2f %8.2f %6.2f %-6s %s\n",
			o.Object, o.Kind, o.Count, o.Over, o.Under,
			o.QErrP50, o.QErrP95, o.QErrMax, o.Staleness, flag, sparkline(o.RecentQErr))
	}
	return b.String()
}

// staleQErr inverts the staleness-score mapping: the geomean q-error a
// score corresponds to.
func staleQErr(score float64) float64 {
	if score >= 1 {
		return 1e18
	}
	return 1 / (1 - score)
}
