package tpch

import (
	"testing"

	"sdpopt/internal/bits"
	"sdpopt/internal/core"
	"sdpopt/internal/dp"
	"sdpopt/internal/idp"
)

func TestSchemaCardinalities(t *testing.T) {
	cat, err := Schema(1)
	if err != nil {
		t.Fatalf("Schema: %v", err)
	}
	cases := []struct {
		rel  int
		name string
		rows float64
	}{
		{Region, "region", 5},
		{Nation, "nation", 25},
		{Supplier, "supplier", 10_000},
		{Customer, "customer", 150_000},
		{Part, "part", 200_000},
		{Partsupp, "partsupp", 800_000},
		{Orders, "orders", 1_500_000},
		{Lineitem, "lineitem", 6_000_000},
	}
	for _, c := range cases {
		rel := cat.Relation(c.rel)
		if rel.Name != c.name || rel.Rows != c.rows {
			t.Errorf("relation %d = %s/%g, want %s/%g", c.rel, rel.Name, rel.Rows, c.name, c.rows)
		}
		for _, col := range rel.Cols {
			if col.NDV > rel.Rows {
				t.Errorf("%s.%s NDV %g exceeds rows %g", rel.Name, col.Name, col.NDV, rel.Rows)
			}
		}
	}
}

func TestSchemaScaleFactor(t *testing.T) {
	small, err := Schema(0.01)
	if err != nil {
		t.Fatal(err)
	}
	if got := small.Relation(Lineitem).Rows; got != 60_000 {
		t.Errorf("SF 0.01 lineitem rows = %g, want 60000", got)
	}
	// Fixed-size relations do not scale.
	if got := small.Relation(Nation).Rows; got != 25 {
		t.Errorf("SF 0.01 nation rows = %g, want 25", got)
	}
	if _, err := Schema(0); err == nil {
		t.Error("SF 0 accepted")
	}
}

func TestNames(t *testing.T) {
	names := Names()
	if len(names) != 5 {
		t.Fatalf("Names = %v", names)
	}
	// Sorted and complete.
	want := []string{"Q10", "Q2", "Q5", "Q8", "Q9"}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("Names = %v, want %v", names, want)
		}
	}
}

func TestUnknownQuery(t *testing.T) {
	cat, _ := Schema(1)
	if _, err := Query(cat, "Q99"); err == nil {
		t.Error("unknown query accepted")
	}
}

func TestQueriesBuildAndShape(t *testing.T) {
	cat, err := Schema(1)
	if err != nil {
		t.Fatal(err)
	}
	shapes := map[string]struct {
		rels    int
		hubs    int
		filters int
	}{
		"Q2":  {5, 0, 2}, // pure chain part-partsupp-supplier-nation-region
		"Q5":  {6, 2, 2}, // nation and (via implied edge) customer/supplier region
		"Q8":  {8, 1, 3}, // lineitem at the center — the star-chain exemplar
		"Q9":  {6, 1, 1}, // lineitem hub
		"Q10": {4, 0, 1},
	}
	for name, want := range shapes {
		q, err := Query(cat, name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if got := q.NumRelations(); got != want.rels {
			t.Errorf("%s relations = %d, want %d", name, got, want.rels)
		}
		if got := len(q.Filters); got != want.filters {
			t.Errorf("%s filters = %d, want %d", name, got, want.filters)
		}
		if got := q.HubRels().Len(); got < want.hubs {
			t.Errorf("%s hubs = %d, want at least %d", name, got, want.hubs)
		}
	}
	// Q8's aliasing: nation appears twice, as distinct query relations
	// over the same catalog relation.
	q8, err := Query(cat, "Q8")
	if err != nil {
		t.Fatal(err)
	}
	if q8.Rels[5] != Nation || q8.Rels[6] != Nation {
		t.Errorf("Q8 nation aliases = %d,%d", q8.Rels[5], q8.Rels[6])
	}
	// Lineitem is Q8's hub (part, supplier, orders spokes).
	if !q8.HubRels().Has(1) {
		t.Errorf("Q8 hubs = %v, want lineitem (index 1)", q8.HubRels())
	}
}

func TestAllQueriesOptimize(t *testing.T) {
	cat, err := Schema(1)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range Names() {
		q, err := Query(cat, name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		optimal, _, err := dp.Optimize(q, dp.Options{})
		if err != nil {
			t.Fatalf("%s DP: %v", name, err)
		}
		if err := optimal.Validate(); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if optimal.Rels != bits.Full(q.NumRelations()) {
			t.Fatalf("%s: plan covers %v", name, optimal.Rels)
		}
		sdpPlan, _, err := core.Optimize(q, core.DefaultOptions())
		if err != nil {
			t.Fatalf("%s SDP: %v", name, err)
		}
		if sdpPlan.Cost < optimal.Cost*(1-1e-9) {
			t.Errorf("%s: SDP beat DP", name)
		}
		if ratio := sdpPlan.Cost / optimal.Cost; ratio > 2 {
			t.Errorf("%s: SDP ratio %.3f beyond Good", name, ratio)
		}
		idpPlan, _, err := idp.Optimize(q, idp.DefaultOptions())
		if err != nil {
			t.Fatalf("%s IDP: %v", name, err)
		}
		if idpPlan.Cost < optimal.Cost*(1-1e-9) {
			t.Errorf("%s: IDP beat DP", name)
		}
	}
}
