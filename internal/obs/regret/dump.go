package regret

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
	"time"

	"sdpopt/internal/quality"
)

// Key identifies one rolling aggregation window: the served technique, the
// join-graph topology family, and the relation-count band.
type Key struct {
	Tech  string `json:"tech"`
	Shape string `json:"shape"`
	Band  string `json:"band"`
}

// KeySummary is one window's quality metrics in a Dump: the paper's
// Plan-Quality columns, computed over the window's current contents.
type KeySummary struct {
	Key
	// Window is the number of samples currently in the rolling window;
	// Lifetime counts every sample the key has ever absorbed.
	Window   int   `json:"window"`
	Lifetime int64 `json:"lifetime"`
	// Rho is ρ, the geometric mean of the windowed ratios; Worst is W.
	Rho   float64 `json:"rho"`
	Worst float64 `json:"worst"`
	// PctIdeal..PctBad are the bucket shares in percent (≤1.01, ≤2, ≤10,
	// >10).
	PctIdeal      float64 `json:"pct_ideal"`
	PctGood       float64 `json:"pct_good"`
	PctAcceptable float64 `json:"pct_acceptable"`
	PctBad        float64 `json:"pct_bad"`
}

// Exemplar is one retained worst-regret measurement with both plan trees,
// so /debug/regret shows not just that a technique regressed but what it
// chose and what it should have chosen.
type Exemplar struct {
	Time          time.Time `json:"time"`
	Tech          string    `json:"tech"`
	Ref           string    `json:"ref"`
	Shape         string    `json:"shape"`
	Band          string    `json:"band"`
	Rels          int       `json:"rels"`
	Source        string    `json:"source"`
	RouteReason   string    `json:"route_reason,omitempty"`
	Ratio         float64   `json:"ratio"`
	ServedCost    float64   `json:"served_cost"`
	RefCost       float64   `json:"ref_cost"`
	ServedShape   string    `json:"served_shape"`
	RefShape      string    `json:"ref_shape"`
	TraceID       string    `json:"trace_id,omitempty"`
	ShadowTraceID string    `json:"shadow_trace_id,omitempty"`
}

// Counts are the shadow layer's lifetime counters. Observed counts every
// serve offered; Sampled those passing the rate gate; Deduped and Dropped
// the sampled serves suppressed by the dedup window or shed by the full
// queue; Completed the finished shadow jobs (Failures of which produced no
// ratio); Pinned the worst-regret traces filed into the flight recorder.
type Counts struct {
	Observed  int64 `json:"observed"`
	Sampled   int64 `json:"sampled"`
	Deduped   int64 `json:"deduped"`
	Dropped   int64 `json:"dropped"`
	Enqueued  int64 `json:"enqueued"`
	Completed int64 `json:"completed"`
	Failures  int64 `json:"failures"`
	Pinned    int64 `json:"pinned"`
}

// Config echoes the shadow sizing so a dump is self-describing.
type Config struct {
	SampleRate    float64 `json:"sample_rate"`
	HitSampleRate float64 `json:"hit_sample_rate"`
	MaxDPRels     int     `json:"max_dp_rels"`
	Workers       int     `json:"workers"`
	QueueSize     int     `json:"queue_size"`
	DedupForNS    int64   `json:"dedup_for_ns"`
	Window        int     `json:"window"`
	TopN          int     `json:"top_n"`
	PinRatio      float64 `json:"pin_ratio"`
}

// Dump is the /debug/regret.json document: config, counters, per-key
// window summaries (worst ρ first), and the top-N regret exemplars.
type Dump struct {
	Time      time.Time    `json:"time"`
	Config    Config       `json:"config"`
	Counts    Counts       `json:"counts"`
	Keys      []KeySummary `json:"keys,omitempty"`
	Exemplars []Exemplar   `json:"exemplars,omitempty"`
}

// Snapshot serializes the shadow state. Nil-safe (returns an empty dump).
func (s *Shadow) Snapshot() *Dump {
	d := &Dump{Time: time.Now()}
	if s == nil {
		return d
	}
	d.Config = Config{
		SampleRate:    s.opts.SampleRate,
		HitSampleRate: s.opts.HitSampleRate,
		MaxDPRels:     s.opts.MaxDPRels,
		Workers:       s.opts.Workers,
		QueueSize:     s.opts.QueueSize,
		DedupForNS:    s.opts.DedupFor.Nanoseconds(),
		Window:        s.opts.Window,
		TopN:          s.opts.TopN,
		PinRatio:      s.opts.PinRatio,
	}
	d.Counts = Counts{
		Observed:  s.observed.Load(),
		Sampled:   s.sampled.Load(),
		Deduped:   s.deduped.Load(),
		Dropped:   s.dropped.Load(),
		Enqueued:  s.enqueued.Load(),
		Completed: s.completed.Load(),
		Failures:  s.failures.Load(),
		Pinned:    s.pinned.Load(),
	}
	s.aggMu.Lock()
	for key, w := range s.windows {
		sum, err := quality.SummarizeRelative(w.ratios)
		if err != nil {
			continue // empty window; nothing to report yet
		}
		d.Keys = append(d.Keys, KeySummary{
			Key:           key,
			Window:        len(w.ratios),
			Lifetime:      w.total,
			Rho:           sum.Rho,
			Worst:         sum.Worst,
			PctIdeal:      sum.PctIdeal,
			PctGood:       sum.PctGood,
			PctAcceptable: sum.PctAcceptable,
			PctBad:        sum.PctBad,
		})
	}
	d.Exemplars = append(d.Exemplars, s.exemplars...)
	s.aggMu.Unlock()
	sort.Slice(d.Keys, func(i, j int) bool {
		a, b := d.Keys[i], d.Keys[j]
		if a.Rho != b.Rho {
			return a.Rho > b.Rho // worst regret first
		}
		if a.Tech != b.Tech {
			return a.Tech < b.Tech
		}
		if a.Shape != b.Shape {
			return a.Shape < b.Shape
		}
		return a.Band < b.Band
	})
	return d
}

// ReadDump decodes a /debug/regret.json document.
func ReadDump(r io.Reader) (*Dump, error) {
	var d Dump
	if err := json.NewDecoder(r).Decode(&d); err != nil {
		return nil, fmt.Errorf("regret: decoding dump: %w", err)
	}
	return &d, nil
}

// Render formats the dump as the text report `sdplab regret` prints: the
// counter line, a per-key quality table in the paper's I/G/A/B column
// style, and the worst-regret exemplars with both plan trees.
func (d *Dump) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "regret shadow: %d observed, %d sampled, %d deduped, %d dropped, %d completed (%d failed), %d pinned\n",
		d.Counts.Observed, d.Counts.Sampled, d.Counts.Deduped, d.Counts.Dropped,
		d.Counts.Completed, d.Counts.Failures, d.Counts.Pinned)
	fmt.Fprintf(&b, "sampling: %g computed / %g hit · reference: dp ≤ %d rels, else sdp · window %d\n",
		d.Config.SampleRate, d.Config.HitSampleRate, d.Config.MaxDPRels, d.Config.Window)
	if len(d.Keys) == 0 {
		b.WriteString("\nno samples yet\n")
		return b.String()
	}
	fmt.Fprintf(&b, "\n%-8s %-10s %-6s %7s %9s  %s\n", "tech", "shape", "band", "window", "lifetime", quality.Header())
	for _, k := range d.Keys {
		fmt.Fprintf(&b, "%-8s %-10s %-6s %7d %9d  %3.0f %3.0f %3.0f %3.0f  W=%5.2f  rho=%5.3f\n",
			k.Tech, k.Shape, k.Band, k.Window, k.Lifetime,
			k.PctIdeal, k.PctGood, k.PctAcceptable, k.PctBad, k.Worst, k.Rho)
	}
	if len(d.Exemplars) > 0 {
		fmt.Fprintf(&b, "\nworst regret exemplars (top %d):\n", len(d.Exemplars))
		for i, ex := range d.Exemplars {
			fmt.Fprintf(&b, "%2d. ratio %.3f  %s vs %s  %s/%s  %d rels  source=%s",
				i+1, ex.Ratio, ex.Tech, ex.Ref, ex.Shape, ex.Band, ex.Rels, ex.Source)
			if ex.RouteReason != "" {
				fmt.Fprintf(&b, "  route=%s", ex.RouteReason)
			}
			if ex.TraceID != "" {
				fmt.Fprintf(&b, "  trace=%s", ex.TraceID)
			}
			if ex.ShadowTraceID != "" {
				fmt.Fprintf(&b, "  shadow=%s", ex.ShadowTraceID)
			}
			b.WriteByte('\n')
			fmt.Fprintf(&b, "    served (cost %.2f): %s\n", ex.ServedCost, ex.ServedShape)
			fmt.Fprintf(&b, "    ref    (cost %.2f): %s\n", ex.RefCost, ex.RefShape)
		}
	}
	return b.String()
}
