// Package catalog models the database schema and optimizer statistics.
//
// The paper's experiments run on a synthetic 1.5 GB PostgreSQL database:
// twenty-five relations whose cardinalities follow a geometric distribution
// (ratio 1.5) from 100 to 2.5 million rows, twenty-four columns per relation
// with geometrically distributed domain sizes, one randomly chosen indexed
// column per relation, and both uniform and exponentially skewed value
// distributions. The optimizer never touches the data itself — it consumes
// only the statistics ANALYZE would produce — so this package generates those
// statistics directly and deterministically from a seed.
package catalog

import (
	"fmt"
	"math"
	"math/rand"
)

// PageSize is the block size assumed by the cost model, matching PostgreSQL.
const PageSize = 8192

// Column holds the per-column statistics the optimizer uses.
type Column struct {
	Name string
	// NDV is the number of distinct values in the column's domain
	// (PostgreSQL's n_distinct), capped at the relation cardinality.
	NDV float64
	// Skew is the exponential-distribution shape of the column's values:
	// 0 means uniform; larger values concentrate rows onto few domain
	// values, shrinking the effective distinct count seen by joins.
	Skew float64
	// Width is the average column width in bytes (pg_stats.avg_width).
	Width int
	// StatsLost marks a column whose ANALYZE statistics (NDV, Skew, the
	// histogram FracBelow encodes) are unavailable — the never-analyzed
	// table case. Estimation must not read NDV or Skew when set (degraded
	// catalogs zero them) and falls back to PostgreSQL's magic defaults
	// instead (see cost.DefaultRangeSel / cost.DefaultNDV). Relation
	// cardinalities stay exact: pg_class.reltuples survives even when
	// pg_statistic rows are missing.
	StatsLost bool `json:",omitempty"`
	// ZipfS, when > 1, gives the column's generated data a Zipf value
	// distribution with this exponent (P(k) ∝ 1/(1+k)^s). Unlike Skew it is
	// a property of the data alone: estimation never reads it, so executed
	// actuals systematically diverge from the uniform-assumption estimates —
	// the divergence the cardinality-feedback ledger measures. Zero means
	// no Zipf tilt.
	ZipfS float64 `json:",omitempty"`
}

// EffectiveNDV is the distinct count used for join selectivity estimation.
// Under an exponential (skewed) distribution, most rows carry a small subset
// of the domain, so the effective distinct count that drives equi-join
// matching is lower than the raw NDV. The 1/(1+skew) contraction is the
// standard first-moment approximation for an exponentially-tilted histogram.
func (c *Column) EffectiveNDV() float64 {
	ndv := c.NDV / (1 + c.Skew)
	if ndv < 1 {
		return 1
	}
	return ndv
}

// Relation describes one base table.
type Relation struct {
	Name string
	// Rows is the table cardinality (pg_class.reltuples).
	Rows float64
	// Cols are the relation's columns. Every relation in the paper's schema
	// has twenty-four.
	Cols []Column
	// IndexCol is the position in Cols of the single indexed column, chosen
	// at random per relation in the paper's schema.
	IndexCol int
	// IndexCorr is the physical correlation of the indexed column with the
	// heap order, in [0,1] (pg_stats.correlation). It interpolates index
	// scan cost between sequential and random page fetches.
	IndexCorr float64
}

// RowWidth is the total tuple width in bytes.
func (r *Relation) RowWidth() int {
	w := 0
	for i := range r.Cols {
		w += r.Cols[i].Width
	}
	return w
}

// Pages is the number of heap pages the relation occupies.
func (r *Relation) Pages() float64 {
	p := r.Rows * float64(r.RowWidth()) / PageSize
	if p < 1 {
		return 1
	}
	return math.Ceil(p)
}

// Catalog is a full schema with statistics.
type Catalog struct {
	Rels []Relation
}

// Relation returns the relation at index i.
func (c *Catalog) Relation(i int) *Relation { return &c.Rels[i] }

// NumRelations returns the number of relations in the catalog.
func (c *Catalog) NumRelations() int { return len(c.Rels) }

// LargestRelation returns the index of the relation with the most rows. The
// paper's star workloads always place the largest relation at the hub, "as is
// usually the case in data warehousing applications".
func (c *Catalog) LargestRelation() int {
	best, bestRows := 0, -1.0
	for i := range c.Rels {
		if c.Rels[i].Rows > bestRows {
			best, bestRows = i, c.Rels[i].Rows
		}
	}
	return best
}

// Config parameterizes synthetic schema generation.
type Config struct {
	// NumRelations is the number of base tables (paper: 25; the
	// maximum-scaleup experiment uses an extended schema).
	NumRelations int
	// BaseRows is the smallest relation cardinality (paper: 100).
	BaseRows float64
	// Ratio is the geometric growth ratio of cardinalities (paper: 1.5).
	Ratio float64
	// ColsPerRelation is the column count per relation (paper: 24).
	ColsPerRelation int
	// MinDomain and MaxDomain bound the geometric distribution of column
	// domain sizes (paper: 100 to 2.5 million).
	MinDomain, MaxDomain float64
	// SkewFraction is the fraction of columns given an exponentially skewed
	// value distribution; the rest are uniform. The paper experiments with
	// both uniform and skewed data.
	SkewFraction float64
	// Seed drives all random choices so schemas are reproducible.
	Seed int64
}

// DefaultConfig is the paper's base schema: 25 relations, cardinalities
// 100 … 100·1.5^24 ≈ 2.52 M (exactly the "100 to 2.5 million rows, geometric
// parameter 1.5" of Section 3.1).
func DefaultConfig() Config {
	return Config{
		NumRelations:    25,
		BaseRows:        100,
		Ratio:           1.5,
		ColsPerRelation: 24,
		MinDomain:       100,
		MaxDomain:       2.5e6,
		SkewFraction:    0,
		Seed:            1,
	}
}

// SkewedConfig is DefaultConfig with half the columns exponentially skewed.
func SkewedConfig() Config {
	cfg := DefaultConfig()
	cfg.SkewFraction = 0.5
	return cfg
}

// ExtendedConfig is the enlarged schema used for the maximum-scaleup
// experiment (Table 3.3), which needs stars of up to 45 relations. A gentler
// ratio keeps the largest relation within the same 2.5 M-row range, and the
// column count grows with the relation count so a hub can join that many
// spokes on distinct columns.
func ExtendedConfig(numRelations int) Config {
	cfg := DefaultConfig()
	cfg.NumRelations = numRelations
	cfg.Ratio = math.Pow(cfg.MaxDomain/cfg.BaseRows, 1/float64(numRelations-1))
	if numRelations > cfg.ColsPerRelation {
		cfg.ColsPerRelation = numRelations
	}
	return cfg
}

// Synthetic builds a schema with statistics from cfg. Generation is
// deterministic in cfg.Seed.
func Synthetic(cfg Config) (*Catalog, error) {
	if cfg.NumRelations < 1 {
		return nil, fmt.Errorf("catalog: NumRelations %d < 1", cfg.NumRelations)
	}
	if cfg.ColsPerRelation < 1 {
		return nil, fmt.Errorf("catalog: ColsPerRelation %d < 1", cfg.ColsPerRelation)
	}
	if cfg.Ratio <= 0 || cfg.BaseRows <= 0 {
		return nil, fmt.Errorf("catalog: BaseRows %g and Ratio %g must be positive", cfg.BaseRows, cfg.Ratio)
	}
	if cfg.MinDomain <= 0 || cfg.MaxDomain < cfg.MinDomain {
		return nil, fmt.Errorf("catalog: bad domain bounds [%g, %g]", cfg.MinDomain, cfg.MaxDomain)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	cat := &Catalog{Rels: make([]Relation, cfg.NumRelations)}
	// Domain sizes form a geometric grid over [MinDomain, MaxDomain]; each
	// column samples a grid point uniformly, mirroring "the domain sizes of
	// the columns also have a geometric distribution".
	const domainGrid = 25
	domRatio := math.Pow(cfg.MaxDomain/cfg.MinDomain, 1/float64(domainGrid-1))
	for i := range cat.Rels {
		rel := &cat.Rels[i]
		rel.Name = fmt.Sprintf("R%d", i+1)
		rel.Rows = math.Round(cfg.BaseRows * math.Pow(cfg.Ratio, float64(i)))
		rel.Cols = make([]Column, cfg.ColsPerRelation)
		for j := range rel.Cols {
			col := &rel.Cols[j]
			col.Name = fmt.Sprintf("c%d", j+1)
			dom := cfg.MinDomain * math.Pow(domRatio, float64(rng.Intn(domainGrid)))
			if dom > rel.Rows {
				dom = rel.Rows // a column cannot have more distinct values than rows
			}
			col.NDV = math.Round(dom)
			if rng.Float64() < cfg.SkewFraction {
				// Exponential skew intensity in (0, 4]: mild to severe.
				col.Skew = 0.5 + rng.Float64()*3.5
			}
			col.Width = 4 + rng.Intn(12) // 4–15 byte columns
		}
		rel.IndexCol = rng.Intn(cfg.ColsPerRelation)
		rel.IndexCorr = rng.Float64()
	}
	return cat, nil
}

// WithZipfSkew returns a deep copy of the catalog in which every column's
// generated data is Zipf-distributed with exponent s (> 1). Statistics are
// untouched — the estimator keeps assuming uniformity while the data
// concentrates onto few hot values, so executed cardinalities diverge from
// estimates in a controlled, reproducible way (see exec.Generate and
// internal/feedback).
func (c *Catalog) WithZipfSkew(s float64) (*Catalog, error) {
	if s <= 1 {
		return nil, fmt.Errorf("catalog: Zipf exponent %g must be > 1", s)
	}
	cp := &Catalog{Rels: make([]Relation, len(c.Rels))}
	for i, rel := range c.Rels {
		r := rel
		r.Cols = append([]Column(nil), rel.Cols...)
		for j := range r.Cols {
			r.Cols[j].ZipfS = s
		}
		cp.Rels[i] = r
	}
	return cp, nil
}

// MustSynthetic is Synthetic that panics on configuration errors; for use
// with the fixed configurations above.
func MustSynthetic(cfg Config) *Catalog {
	cat, err := Synthetic(cfg)
	if err != nil {
		panic(err)
	}
	return cat
}
