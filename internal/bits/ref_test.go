package bits

import (
	"math/rand"
	"sort"
	"testing"
)

// refSet is the obviously-correct reference implementation every multi-word
// operation is checked against: a boolean membership array with set algebra
// written element-by-element.
type refSet [MaxRelations]bool

func refFrom(s Set) refSet {
	var r refSet
	s.Each(func(i int) { r[i] = true })
	return r
}

func (r refSet) toSet() Set {
	var s Set
	for i, ok := range r {
		if ok {
			s = s.Add(i)
		}
	}
	return s
}

func (r refSet) len() int {
	n := 0
	for _, ok := range r {
		if ok {
			n++
		}
	}
	return n
}

func (r refSet) slice() []int {
	var out []int
	for i, ok := range r {
		if ok {
			out = append(out, i)
		}
	}
	return out
}

func (r refSet) nextBit(from int) int {
	if from < 0 {
		from = 0
	}
	for i := from; i < MaxRelations; i++ {
		if r[i] {
			return i
		}
	}
	return -1
}

// refSubsets enumerates the proper subsets of s containing s's minimum
// element by recursion over the member list — no bit tricks shared with the
// implementation under test.
func refSubsets(s Set) []Set {
	if s.IsEmpty() || s.Len() == 1 {
		return nil
	}
	members := s.Slice()
	lo, rest := members[0], members[1:]
	var out []Set
	for mask := 0; mask < 1<<len(rest); mask++ {
		sub := Single(lo)
		for j, m := range rest {
			if mask&(1<<j) != 0 {
				sub = sub.Add(m)
			}
		}
		if sub != s {
			out = append(out, sub)
		}
	}
	return out
}

// boundaryRandomSet draws sets that preferentially include bits 62–65 and
// 126–127, the cross-word cases a single-word implementation never sees.
func boundaryRandomSet(rng *rand.Rand, maxLen int) Set {
	hot := []int{62, 63, 64, 65, 126, 127}
	var s Set
	n := 1 + rng.Intn(maxLen)
	for s.Len() < n {
		if rng.Intn(2) == 0 {
			s = s.Add(hot[rng.Intn(len(hot))])
		} else {
			s = s.Add(rng.Intn(MaxRelations))
		}
	}
	return s
}

func TestReferenceAlgebra(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 500; trial++ {
		a := boundaryRandomSet(rng, 20)
		b := boundaryRandomSet(rng, 20)
		ra, rb := refFrom(a), refFrom(b)

		var union, inter, diff refSet
		overlaps, contains := false, true
		for i := 0; i < MaxRelations; i++ {
			union[i] = ra[i] || rb[i]
			inter[i] = ra[i] && rb[i]
			diff[i] = ra[i] && !rb[i]
			overlaps = overlaps || (ra[i] && rb[i])
			contains = contains && (!rb[i] || ra[i])
		}
		if got, want := a.Union(b), union.toSet(); got != want {
			t.Fatalf("Union(%v,%v) = %v, want %v", a, b, got, want)
		}
		if got, want := a.Intersect(b), inter.toSet(); got != want {
			t.Fatalf("Intersect(%v,%v) = %v, want %v", a, b, got, want)
		}
		if got, want := a.Diff(b), diff.toSet(); got != want {
			t.Fatalf("Diff(%v,%v) = %v, want %v", a, b, got, want)
		}
		if a.Overlaps(b) != overlaps || a.Disjoint(b) == overlaps {
			t.Fatalf("Overlaps(%v,%v) disagrees with reference", a, b)
		}
		if a.Contains(b) != contains {
			t.Fatalf("Contains(%v,%v) disagrees with reference", a, b)
		}
		if a.Len() != ra.len() {
			t.Fatalf("Len(%v) = %d, want %d", a, a.Len(), ra.len())
		}
		sl := ra.slice()
		if a.Min() != sl[0] || a.Max() != sl[len(sl)-1] {
			t.Fatalf("Min/Max(%v) disagree with reference %v", a, sl)
		}
	}
}

func TestReferenceIterNextBit(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	for trial := 0; trial < 500; trial++ {
		s := boundaryRandomSet(rng, 20)
		r := refFrom(s)
		want := r.slice()

		var viaIter []int
		for it := s.Iter(); ; {
			i, ok := it.Next()
			if !ok {
				break
			}
			viaIter = append(viaIter, i)
		}
		if !equalInts(viaIter, want) {
			t.Fatalf("Iter(%v) = %v, reference %v", s, viaIter, want)
		}
		for from := -1; from <= MaxRelations; from++ {
			if got, wantB := s.NextBit(from), r.nextBit(from); got != wantB {
				t.Fatalf("NextBit(%v, %d) = %d, reference %d", s, from, got, wantB)
			}
		}
	}
}

func TestReferenceSubsets(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	for trial := 0; trial < 200; trial++ {
		s := boundaryRandomSet(rng, 10)
		var got []Set
		s.Subsets(func(sub Set) bool {
			got = append(got, sub)
			return true
		})
		want := refSubsets(s)
		sortSets(got)
		sortSets(want)
		if len(got) != len(want) {
			t.Fatalf("Subsets(%v) emitted %d, reference %d", s, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("Subsets(%v) diverges from reference at %d: %v vs %v", s, i, got[i], want[i])
			}
		}
	}
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func sortSets(s []Set) {
	sort.Slice(s, func(i, j int) bool { return s[i].Less(s[j]) })
}
