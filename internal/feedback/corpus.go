package feedback

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"sort"
	"strings"
	"sync"
)

// CorpusWriter persists observations as an append-only JSONL corpus — the
// training data a learned estimator replays. One observation per line,
// buffered; Flush on graceful shutdown, like the trace JSONL sink.
type CorpusWriter struct {
	mu  sync.Mutex
	w   *bufio.Writer
	c   io.Closer
	err error
}

// NewCorpusWriter wraps an open writer. If w is also an io.Closer it is
// closed by Close.
func NewCorpusWriter(w io.Writer) *CorpusWriter {
	cw := &CorpusWriter{w: bufio.NewWriterSize(w, 1<<16)}
	if c, ok := w.(io.Closer); ok {
		cw.c = c
	}
	return cw
}

// OpenCorpus opens (appending, creating if absent) a JSONL corpus file —
// append-only by construction: restarts extend the corpus rather than
// truncating history.
func OpenCorpus(path string) (*CorpusWriter, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("feedback: corpus file: %w", err)
	}
	return NewCorpusWriter(f), nil
}

// Append writes observations, one JSON line each. Marshal/write errors are
// sticky and reported on Flush/Close. Nil-safe.
func (cw *CorpusWriter) Append(observations ...Observation) {
	if cw == nil {
		return
	}
	cw.mu.Lock()
	defer cw.mu.Unlock()
	for _, o := range observations {
		b, err := json.Marshal(o)
		if err != nil {
			if cw.err == nil {
				cw.err = err
			}
			continue
		}
		cw.w.Write(b)
		cw.w.WriteByte('\n')
	}
}

// Flush forces buffered lines out without closing; the writer stays usable.
// Nil-safe.
func (cw *CorpusWriter) Flush() error {
	if cw == nil {
		return nil
	}
	cw.mu.Lock()
	defer cw.mu.Unlock()
	err := cw.w.Flush()
	if cw.err != nil && err == nil {
		err = cw.err
	}
	return err
}

// Close flushes and closes the underlying file, if any. Nil-safe.
func (cw *CorpusWriter) Close() error {
	if cw == nil {
		return nil
	}
	cw.mu.Lock()
	defer cw.mu.Unlock()
	err := cw.w.Flush()
	if cw.c != nil {
		if cerr := cw.c.Close(); err == nil {
			err = cerr
		}
	}
	if cw.err != nil && err == nil {
		err = cw.err
	}
	return err
}

// ReadCorpusLenient decodes a JSONL corpus, skipping malformed lines instead
// of aborting — à la obs.ReadTraceJSONLLenient, because the common corruption
// for an append-only log is a tail cut off mid-write. Each skipped line
// produces one warning on warn (when non-nil); only a read error from r
// itself is fatal.
func ReadCorpusLenient(r io.Reader, warn io.Writer) (observations []Observation, skipped int, err error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<24)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		var o Observation
		if uerr := json.Unmarshal([]byte(text), &o); uerr != nil || o.Object == "" {
			skipped++
			if warn != nil {
				if uerr == nil {
					uerr = fmt.Errorf("missing object key")
				}
				fmt.Fprintf(warn, "warning: corpus line %d skipped: %v\n", line, uerr)
			}
			continue
		}
		observations = append(observations, o)
	}
	if err := sc.Err(); err != nil {
		return nil, skipped, err
	}
	return observations, skipped, nil
}

// ErrorProfile is a corpus reduced to per-object multiplicative error
// factors: the geometric mean of est/actual per catalog object. A factor of
// 3 means the estimator overestimated that object's cardinalities 3× on
// (geometric) average. internal/ce replays a profile in place of its
// synthetic log-normal factors, making the ρ-under-error grid runnable
// against measured error distributions.
//
// Construction accumulates log-ratios in corpus order and Go's JSON encoder
// emits map keys sorted, so the same corpus always yields a byte-identical
// marshaled profile — the determinism the replay contract pins.
type ErrorProfile struct {
	// Rels maps relation name → geomean est/actual of its scan nodes.
	Rels map[string]float64 `json:"rels"`
	// Preds maps predicate label → geomean est/actual of its join nodes.
	Preds map[string]float64 `json:"preds"`
	// Observations is how many corpus lines the profile absorbed.
	Observations int `json:"observations"`
}

// BuildProfile reduces observations to an ErrorProfile. Non-finite ratios
// are skipped.
func BuildProfile(observations []Observation) *ErrorProfile {
	type acc struct {
		sumLog float64
		n      int
	}
	rels := map[string]*acc{}
	preds := map[string]*acc{}
	count := 0
	for _, o := range observations {
		r := o.Ratio()
		if math.IsNaN(r) || math.IsInf(r, 0) || r <= 0 {
			continue
		}
		var m map[string]*acc
		switch o.Kind {
		case KindRelation:
			m = rels
		case KindPredicate:
			m = preds
		default:
			continue
		}
		a := m[o.Object]
		if a == nil {
			a = &acc{}
			m[o.Object] = a
		}
		a.sumLog += math.Log(r)
		a.n++
		count++
	}
	reduce := func(m map[string]*acc) map[string]float64 {
		out := make(map[string]float64, len(m))
		for k, a := range m {
			out[k] = math.Exp(a.sumLog / float64(a.n))
		}
		return out
	}
	return &ErrorProfile{Rels: reduce(rels), Preds: reduce(preds), Observations: count}
}

// RelFactor returns the profile's error factor for a relation name, 1 when
// unobserved. Nil-safe.
func (p *ErrorProfile) RelFactor(name string) float64 {
	if p == nil {
		return 1
	}
	if f, ok := p.Rels[name]; ok {
		return f
	}
	return 1
}

// PredFactor returns the profile's error factor for a predicate label, 1
// when unobserved. Nil-safe.
func (p *ErrorProfile) PredFactor(label string) float64 {
	if p == nil {
		return 1
	}
	if f, ok := p.Preds[label]; ok {
		return f
	}
	return 1
}

// Summary renders the profile's worst factors, both directions, for CLI
// output.
func (p *ErrorProfile) Summary(topN int) string {
	if p == nil {
		return "no profile\n"
	}
	type kv struct {
		key    string
		factor float64
	}
	var all []kv
	for k, f := range p.Rels {
		all = append(all, kv{k, f})
	}
	for k, f := range p.Preds {
		all = append(all, kv{k, f})
	}
	sort.Slice(all, func(i, j int) bool {
		qi, qj := math.Max(all[i].factor, 1/all[i].factor), math.Max(all[j].factor, 1/all[j].factor)
		if qi != qj {
			return qi > qj
		}
		return all[i].key < all[j].key
	})
	if topN > 0 && len(all) > topN {
		all = all[:topN]
	}
	var b strings.Builder
	fmt.Fprintf(&b, "empirical error profile: %d observations, %d relations, %d predicates\n",
		p.Observations, len(p.Rels), len(p.Preds))
	for _, e := range all {
		dir := "over"
		if e.factor < 1 {
			dir = "under"
		}
		fmt.Fprintf(&b, "  %-28s factor %8.3f (%s)\n", e.key, e.factor, dir)
	}
	return b.String()
}
