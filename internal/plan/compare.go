package plan

// Compare imposes a deterministic total order on plan trees: cheaper first,
// ties broken on a canonical structural key (relation set, operator, output
// order, scan relation, then the children recursively). Two plans compare
// equal only when they are structurally identical, which makes the order
// total over the distinct candidates a memo class ever sees — and therefore
// makes "the retained plan" independent of the order candidates arrive in.
// That arrival-order independence is the invariant the parallel enumeration
// engine (internal/pardp) relies on to produce results bit-for-bit identical
// to the sequential engine, so every retention decision in the memo funnels
// through this comparison.
func Compare(a, b *Plan) int {
	switch {
	case a == b:
		return 0
	case a == nil:
		return -1
	case b == nil:
		return 1
	}
	switch {
	case a.Cost < b.Cost:
		return -1
	case a.Cost > b.Cost:
		return 1
	}
	if c := a.Rels.Compare(b.Rels); c != 0 {
		return c
	}
	if a.Op != b.Op {
		return int(a.Op) - int(b.Op)
	}
	if a.Order != b.Order {
		return a.Order - b.Order
	}
	if a.Rel != b.Rel {
		return a.Rel - b.Rel
	}
	if c := Compare(a.Left, b.Left); c != 0 {
		return c
	}
	return Compare(a.Right, b.Right)
}

// Less reports whether a precedes b in Compare's total order. The cost
// comparison is inlined here: it decides almost every call from the
// enumeration hot path (memo retention), where cost ties are rare, and
// keeps the structural walk off that path.
func Less(a, b *Plan) bool {
	if a != nil && b != nil && a.Cost != b.Cost {
		return a.Cost < b.Cost
	}
	return Compare(a, b) < 0
}
