// Package sdpopt is a query-optimizer laboratory reproducing "Robust
// Heuristics for Scalable Optimization of Complex SQL Queries" (ICDE 2007):
// SDP — Skyline Dynamic Programming — a robust pruning strategy for the
// bottom-up dynamic-programming join-order search, evaluated against
// exhaustive DP and Iterative Dynamic Programming (IDP).
//
// The package exposes the full pipeline:
//
//	cat := sdpopt.PaperSchema()                           // synthetic statistics
//	qs, _ := sdpopt.Instances(sdpopt.WorkloadSpec{        // workload generation
//	    Cat: cat, Topology: sdpopt.Star, NumRelations: 15,
//	}, 10)
//	plan, stats, _ := sdpopt.OptimizeSDP(qs[0], sdpopt.SDPOptions())
//	fmt.Println(sdpopt.Explain(qs[0], plan))
//
// and the experiment harness that regenerates every table and figure of the
// paper (see Experiments and RunExperiment).
package sdpopt

import (
	"context"
	"io"
	"time"

	"sdpopt/internal/catalog"
	"sdpopt/internal/ce"
	"sdpopt/internal/core"
	"sdpopt/internal/cost"
	"sdpopt/internal/dp"
	"sdpopt/internal/exec"
	"sdpopt/internal/genetic"
	"sdpopt/internal/greedy"
	"sdpopt/internal/harness"
	"sdpopt/internal/idp"
	"sdpopt/internal/memo"
	"sdpopt/internal/obs"
	"sdpopt/internal/pardp"
	"sdpopt/internal/parse"
	"sdpopt/internal/plan"
	"sdpopt/internal/quality"
	"sdpopt/internal/query"
	"sdpopt/internal/randomized"
	"sdpopt/internal/tpch"
	"sdpopt/internal/workload"
)

// Schema and statistics.
type (
	// Catalog is a database schema with optimizer statistics.
	Catalog = catalog.Catalog
	// Relation is one base table's statistics.
	Relation = catalog.Relation
	// Column is one column's statistics.
	Column = catalog.Column
	// SchemaConfig parameterizes synthetic schema generation.
	SchemaConfig = catalog.Config
)

// Queries and join graphs.
type (
	// Query is an N-relation equi-join query with an optional ORDER BY.
	Query = query.Query
	// Pred is an equi-join predicate.
	Pred = query.Pred
	// OrderSpec requests sorted output on a relation column.
	OrderSpec = query.OrderSpec
	// Filter is a local range selection "column < Bound".
	Filter = query.Filter
	// Edge is an undirected join-graph edge.
	Edge = query.Edge
)

// Plans and statistics.
type (
	// Plan is a physical execution plan tree.
	Plan = plan.Plan
	// Stats reports optimization overheads: simulated memory, wall time and
	// plans costed.
	Stats = dp.Stats
	// QualitySummary is the paper's plan-quality distribution
	// (Ideal/Good/Acceptable/Bad, worst case W, geometric mean ρ).
	QualitySummary = quality.Summary
)

// Workloads.
type (
	// WorkloadSpec describes a workload template over a catalog.
	WorkloadSpec = workload.Spec
	// Topology identifies a join-graph template.
	Topology = workload.Topology
)

// Workload topologies.
const (
	Chain     = workload.Chain
	Star      = workload.Star
	Cycle     = workload.Cycle
	Clique    = workload.Clique
	StarChain = workload.StarChain
	Custom    = workload.Custom
	Snowflake = workload.Snowflake
)

// DefaultBudget is the paper's 1 GB memory feasibility budget.
const DefaultBudget = memo.DefaultBudget

// ErrBudget reports that an optimization exceeded its memory budget — the
// paper's infeasible ("*") outcome. Test with errors.Is.
var ErrBudget = memo.ErrBudget

// NewSchema generates a synthetic schema with statistics from cfg.
func NewSchema(cfg SchemaConfig) (*Catalog, error) { return catalog.Synthetic(cfg) }

// DefaultSchemaConfig is the paper's base schema configuration: 25
// relations, geometric cardinalities, 24 columns each, one index per
// relation.
func DefaultSchemaConfig() SchemaConfig { return catalog.DefaultConfig() }

// PaperSchema returns the paper's base 25-relation schema.
func PaperSchema() *Catalog { return workload.PaperSchema() }

// SkewedSchema returns the base schema with exponentially skewed columns.
func SkewedSchema() *Catalog { return workload.SkewedSchema() }

// ExtendedSchema returns the enlarged schema of the maximum-scaleup
// experiment.
func ExtendedSchema(numRelations int) *Catalog { return workload.ExtendedSchema(numRelations) }

// NewQuery builds and validates a query over catalog relations rels with
// the given join predicates and optional ORDER BY. The join graph must be
// connected; implied edges from shared join columns are added
// automatically.
func NewQuery(cat *Catalog, rels []int, preds []Pred, orderBy *OrderSpec) (*Query, error) {
	return query.New(cat, rels, preds, orderBy)
}

// NewFilteredQuery is NewQuery with local range selections, which drive
// access-path selection (index range scans).
func NewFilteredQuery(cat *Catalog, rels []int, preds []Pred, filters []Filter, orderBy *OrderSpec) (*Query, error) {
	return query.NewFiltered(cat, rels, preds, filters, orderBy)
}

// Topology edge generators for hand-built queries.
var (
	ChainEdges     = query.ChainEdges
	StarEdges      = query.StarEdges
	CycleEdges     = query.CycleEdges
	CliqueEdges    = query.CliqueEdges
	StarChainEdges = query.StarChainEdges
	SnowflakeEdges = query.SnowflakeEdges
)

// Instances samples count query instances of the workload template.
func Instances(spec WorkloadSpec, count int) ([]*Query, error) {
	return workload.Instances(spec, count)
}

// DPOptions configures exhaustive dynamic programming.
type DPOptions struct {
	// Budget is the simulated-memory feasibility limit in bytes
	// (0 = unlimited).
	Budget int64
	// Ctx, if non-nil, bounds the optimization: cancellation or an expired
	// deadline aborts the enumeration with ErrCanceled (distinct from the
	// budget's ErrBudget — a deadline is a serving concern, a budget a
	// feasibility measurement).
	Ctx context.Context
	// Workers selects the enumeration engine: 0 or 1 runs the classic
	// sequential DPsize loop, >1 the level-synchronous parallel engine with
	// that many workers. The result — plan, cost, plans costed, classes
	// created — is bit-for-bit identical either way; only wall time changes.
	Workers int
	// Obs receives metrics and trace events; nil falls back to the
	// process-wide default observer (see SetDefaultObserver).
	Obs *Observer
}

// OptimizeDP finds the optimal plan by exhaustive dynamic programming —
// the paper's DP baseline. It fails with ErrBudget beyond the feasibility
// cliff (a ~17-relation star under the default 1 GB budget).
func OptimizeDP(q *Query, opts DPOptions) (*Plan, Stats, error) {
	if opts.Workers > 1 {
		return pardp.Optimize(q, pardp.Options{
			Workers: opts.Workers, Budget: opts.Budget, Ctx: opts.Ctx, Obs: opts.Obs,
		})
	}
	return dp.Optimize(q, dp.Options{Budget: opts.Budget, Ctx: opts.Ctx, Obs: opts.Obs})
}

// IDPOptions configures Iterative Dynamic Programming.
type IDPOptions = idp.Options

// IDPDefaults returns the paper's IDP configuration:
// IDP1-balanced-bestRow with k=7 and 5 % ballooning.
func IDPDefaults() IDPOptions { return idp.DefaultOptions() }

// OptimizeIDP runs Iterative Dynamic Programming, the strongest prior
// heuristic the paper compares against.
func OptimizeIDP(q *Query, opts IDPOptions) (*Plan, Stats, error) {
	return idp.Optimize(q, opts)
}

// SDP configuration re-exports.
type (
	// SDPConfig configures the SDP optimizer.
	SDPConfig = core.Options
	// SDPTrace records SDP's per-level pruning decisions.
	SDPTrace = core.Trace
)

// SDP option enums.
const (
	RootHub       = core.RootHub
	ParentHub     = core.ParentHub
	Option1       = core.Option1
	Option2       = core.Option2
	StrongSkyline = core.StrongSkyline
	LocalPruning  = core.Local
	GlobalPruning = core.Global
)

// SDPOptions returns the paper's adopted SDP configuration: root-hub
// partitioning with the Option-2 disjunctive pairwise skyline, locally
// applied to hub regions only.
func SDPOptions() SDPConfig { return core.DefaultOptions() }

// OptimizeSDP runs Skyline Dynamic Programming — the paper's contribution.
func OptimizeSDP(q *Query, opts SDPConfig) (*Plan, Stats, error) {
	return core.Optimize(q, opts)
}

// Explain renders a plan in a PostgreSQL-EXPLAIN-like format with the
// query's relation names.
func Explain(q *Query, p *Plan) string {
	return p.Explain(func(i int) string { return q.Relation(i).Name })
}

// PlanShape renders a plan's join structure on one line, e.g.
// "((R1 ⋈ R3) ⋈ R2)".
func PlanShape(q *Query, p *Plan) string {
	return p.Shape(func(i int) string { return q.Relation(i).Name })
}

// Summarize computes the paper's quality metrics over plan-cost ratios
// against an optimal (DP) reference.
func Summarize(ratios []float64) (QualitySummary, error) { return quality.Summarize(ratios) }

// ExperimentConfig parameterizes a harness experiment run.
type ExperimentConfig = harness.Config

// ExperimentInfo identifies one reproducible paper artifact.
type ExperimentInfo struct {
	ID    string
	Title string
}

// Experiments lists every reproducible table and figure.
func Experiments() []ExperimentInfo {
	out := make([]ExperimentInfo, len(harness.Registry))
	for i, e := range harness.Registry {
		out[i] = ExperimentInfo{ID: e.ID, Title: e.Title}
	}
	return out
}

// RunExperiment reproduces one paper table or figure by id (e.g.
// "tab3.1") and returns its rendered output.
func RunExperiment(id string, cfg ExperimentConfig) (string, error) {
	e, err := harness.Lookup(id)
	if err != nil {
		return "", err
	}
	return e.Run(cfg)
}

// GreedyOptions configures Greedy Operator Ordering.
type GreedyOptions = greedy.Options

// OptimizeGreedy runs Greedy Operator Ordering (GOO): repeatedly join the
// pair of nodes with the smallest result cardinality. The cheapest and
// least reliable baseline.
func OptimizeGreedy(q *Query, opts GreedyOptions) (*Plan, Stats, error) {
	return greedy.Optimize(q, opts)
}

// RandomizedOptions configures the randomized searches.
type RandomizedOptions = randomized.Options

// Randomized algorithms.
const (
	IterativeImprovement = randomized.II
	SimulatedAnnealing   = randomized.SA
)

// OptimizeRandomized runs Iterative Improvement or Simulated Annealing
// over left-deep join trees — the "jettison DP entirely" alternatives the
// paper's introduction cites.
func OptimizeRandomized(q *Query, opts RandomizedOptions) (*Plan, Stats, error) {
	return randomized.Optimize(q, opts)
}

// GeneticOptions configures the GEQO-style genetic optimizer.
type GeneticOptions = genetic.Options

// OptimizeGenetic runs a GEQO-style genetic search (order crossover with
// connectivity repair, tournament selection, elitism).
func OptimizeGenetic(q *Query, opts GeneticOptions) (*Plan, Stats, error) {
	return genetic.Optimize(q, opts)
}

// Execution (validation harness).
type (
	// ExecDB is synthetic data generated from the catalog statistics, able
	// to execute plans.
	ExecDB = exec.DB
	// ResultTable is a materialized execution result.
	ResultTable = exec.Table
)

// GenerateData builds synthetic tuples for q's relations matching the
// catalog's cardinalities, distinct counts and skew. maxRows caps per-
// relation size — the executor validates optimizer behavior on scaled-down
// schemas, it is not a data warehouse.
func GenerateData(q *Query, seed int64, maxRows int) (*ExecDB, error) {
	return exec.Generate(q, seed, maxRows)
}

// EstimationError returns the signed log10 ratio of an estimated
// cardinality to the actual row count (0 = exact, 1 = 10× overestimate).
func EstimationError(estimated float64, actual int) float64 {
	return exec.EstimationError(estimated, actual)
}

// OptimizeIDP2 runs the IDP2 variant: a greedy initial plan iteratively
// improved by exhaustive DP over subtrees of at most K relations.
func OptimizeIDP2(q *Query, opts IDPOptions) (*Plan, Stats, error) {
	return idp.Optimize2(q, opts)
}

// JoinGraphDOT renders the query's join graph in Graphviz format (hubs
// double-circled, implied edges dashed).
func JoinGraphDOT(q *Query) string { return q.DOT() }

// PlanDOT renders a plan tree in Graphviz format.
func PlanDOT(q *Query, p *Plan) string {
	return p.DOT(func(i int) string { return q.Relation(i).Name })
}

// ParseSQL builds a query from SQL text against the catalog. The dialect
// covers the optimizer's query class: SELECT * over comma-joined tables
// with equi-join predicates, "col < N" range filters, and an optional
// ORDER BY. Everything Query.SQL emits round-trips.
func ParseSQL(cat *Catalog, src string) (*Query, error) {
	return parse.SQL(cat, src)
}

// TPCHSchema returns the TPC-H benchmark schema at the given scale factor
// (SF 1 = the canonical 6-million-row LINEITEM), with the columns the
// modeled queries touch.
func TPCHSchema(sf float64) (*Catalog, error) { return tpch.Schema(sf) }

// TPCHQuery builds one of the modeled TPC-H join graphs ("Q2", "Q5",
// "Q8", "Q9", "Q10") against a TPCHSchema catalog. Q8 and Q9 are the
// star-chain shapes the paper's introduction cites.
func TPCHQuery(cat *Catalog, name string) (*Query, error) { return tpch.Query(cat, name) }

// TPCHQueryNames lists the modeled TPC-H queries.
func TPCHQueryNames() []string { return tpch.Names() }

// EnumerateInstances walks the workload's relation combinations in
// lexicographic order — the paper's full combinatorial enumeration — up to
// limit instances (0 = all). Star and StarChain only.
func EnumerateInstances(spec WorkloadSpec, limit int) ([]*Query, error) {
	return workload.Enumerate(spec, limit)
}

// Observability. An Observer bundles a metrics registry with an event
// tracer; every optimizer layer reports through it when one is installed
// (telemetry is off — and free — by default).
type (
	// Observer bundles a metrics registry and an event tracer.
	Observer = obs.Observer
	// MetricsRegistry holds atomic counters, gauges and duration
	// histograms, and renders Prometheus text exposition.
	MetricsRegistry = obs.Registry
	// TraceEvent is one structured optimizer event.
	TraceEvent = obs.Event
	// TraceSink receives trace events.
	TraceSink = obs.Sink
	// TraceMemSink buffers events in memory (tests, CLI tables).
	TraceMemSink = obs.MemSink
	// TraceJSONLSink appends events to a JSONL stream.
	TraceJSONLSink = obs.JSONLSink
	// TraceRecord is one decoded JSONL trace line.
	TraceRecord = obs.Record
	// TraceSummary aggregates a trace: effort per technique, time per
	// level, pruning efficacy per skyline criterion.
	TraceSummary = obs.TraceSummary
)

// Trace event types.
const (
	EvOptimizeStart = obs.EvOptimizeStart
	EvOptimizeEnd   = obs.EvOptimizeEnd
	EvLevel         = obs.EvLevel
	EvBudgetAbort   = obs.EvBudgetAbort
	EvSDPLevel      = obs.EvSDPLevel
	EvSDPPartition  = obs.EvSDPPartition
	EvIDPIteration  = obs.EvIDPIteration
	EvIDPCommit     = obs.EvIDPCommit
	EvBatchStart    = obs.EvBatchStart
	EvBatchEnd      = obs.EvBatchEnd
	EvInstance      = obs.EvInstance
)

// NewObserver returns an observer over a fresh metrics registry delivering
// events to the given sinks (none = metrics only).
func NewObserver(sinks ...TraceSink) *Observer { return obs.New(sinks...) }

// SetDefaultObserver installs the process-wide observer every optimization
// without an explicit one reports to (nil disables telemetry, the default).
func SetDefaultObserver(o *Observer) { obs.SetDefault(o) }

// DefaultObserver returns the process-wide observer, or nil.
func DefaultObserver() *Observer { return obs.Default() }

// OpenTraceJSONL opens (creating or truncating) a JSONL trace sink at path.
func OpenTraceJSONL(path string) (*TraceJSONLSink, error) { return obs.OpenJSONL(path) }

// ReadTraceJSONL decodes a JSONL trace stream written by a TraceJSONLSink.
func ReadTraceJSONL(r io.Reader) ([]TraceRecord, error) { return obs.ReadJSONL(r) }

// ReadTraceJSONLLenient decodes a JSONL trace stream, skipping malformed
// lines — a warning per skipped line goes to warn (discarded when nil) —
// instead of aborting on the first one, and returns how many were skipped.
// Traces cut off mid-line by a crash or a concurrent writer stay readable.
func ReadTraceJSONLLenient(r io.Reader, warn io.Writer) ([]TraceRecord, int, error) {
	return obs.ReadJSONLLenient(r, warn)
}

// SummarizeTrace aggregates decoded trace records; render the result with
// TraceSummary.Render.
func SummarizeTrace(records []TraceRecord) *TraceSummary { return obs.Summarize(records) }

// BenchReport is the machine-readable benchmark result `sdplab bench`
// writes as BENCH_<date>.json.
type BenchReport = harness.BenchReport

// RunBench runs the benchmark workload set and returns the per-technique
// overhead report, stamped with date.
func RunBench(cfg ExperimentConfig, date time.Time) (*BenchReport, error) {
	return harness.Bench(cfg, date)
}

// Cardinality-error robustness (see internal/ce): optimize under a lying
// estimator, re-cost under truth, report ρ-under-error per technique.
type (
	// Estimator is the cost model's pluggable cardinality-estimation
	// boundary.
	Estimator = cost.Estimator
	// RobustConfig parameterizes a robustness evaluation.
	RobustConfig = ce.Config
	// RobustReport is a full robustness evaluation result.
	RobustReport = ce.Report
	// RobustTopoSpec selects one join-graph family for the sweep.
	RobustTopoSpec = ce.TopoSpec
	// ErrorMode selects which estimates the error injector corrupts.
	ErrorMode = ce.Mode
)

// Error-injection modes.
const (
	ErrorModeRelation  = ce.ModeRelation
	ErrorModePredicate = ce.ModePredicate
	ErrorModeBoth      = ce.ModeBoth
)

// ParseErrorMode parses a -mode flag value (relation|predicate|both).
func ParseErrorMode(s string) (ErrorMode, error) { return ce.ParseMode(s) }

// RunRobustness executes the robustness sweep described by cfg.
func RunRobustness(cfg RobustConfig) (*RobustReport, error) { return ce.Evaluate(cfg) }

// DegradeStats returns a deep copy of cat with each column's ANALYZE
// statistics independently lost with probability 1-health,
// deterministically in seed (see ce.DegradeCatalog).
func DegradeStats(cat *Catalog, health float64, seed int64) (*Catalog, error) {
	return ce.DegradeCatalog(cat, health, seed)
}
