// Package greedy implements Greedy Operator Ordering (GOO), the classic
// O(n³) bottom-up greedy heuristic: repeatedly join the pair of current
// nodes whose result has the smallest cardinality until one tree remains.
//
// GOO is the cheapest member of the heuristic family the paper's
// evaluation space sits in; it serves as a lower anchor for the
// quality/effort tradeoff (Figure 1.2-style comparisons): almost no
// optimization effort, no optimality guarantee, bushy trees allowed.
package greedy

import (
	"context"
	"fmt"
	"time"

	"sdpopt/internal/bits"
	"sdpopt/internal/cost"
	"sdpopt/internal/dp"
	"sdpopt/internal/memo"
	"sdpopt/internal/obs"
	"sdpopt/internal/obs/span"
	"sdpopt/internal/plan"
	"sdpopt/internal/query"
)

// Options configures a GOO run.
type Options struct {
	// Model supplies costing; if nil a fresh default model is created.
	Model *cost.Model
	// Ctx carries cancellation and the active trace span; nil disables
	// both. GOO polls it once per merge step.
	Ctx context.Context
	// Obs receives the optimize events and metrics every other engine
	// emits; nil disables observation.
	Obs *obs.Observer
}

// Optimize runs Greedy Operator Ordering on q. It reports through the same
// channels as the enumeration engines — Stats pairs counters, obs optimize
// events under the "GOO" label, and a span child when opts.Ctx carries a
// trace — so routed fast-path requests show up in traces and sdptrace
// tables like any other serve.
func Optimize(q *query.Query, opts Options) (*plan.Plan, dp.Stats, error) {
	model := opts.Model
	if model == nil {
		model = cost.NewModel(q, cost.DefaultParams())
	}
	started := time.Now()
	costedAtStart := model.PlansCosted
	var pairsConsidered, pairsConnected int64

	emit := dp.ObserveRun(obs.Or(opts.Obs), "GOO", q)
	sp := span.FromContext(opts.Ctx).Child("goo.order")
	done := func(p *plan.Plan, st dp.Stats, err error) (*plan.Plan, dp.Stats, error) {
		sp.Add("pairs_considered", st.PairsConsidered)
		sp.Add("pairs_connected", st.PairsConnected)
		sp.Add("plans_costed", st.PlansCosted)
		if err != nil {
			sp.FinishErr(err)
		} else {
			sp.Finish()
		}
		emit(st, p, err)
		return p, st, err
	}

	type node struct {
		set bits.Set
		pl  *plan.Plan
	}
	nodes := make([]node, q.NumRelations())
	for i := range nodes {
		paths := model.AccessPaths(i)
		best := paths[0]
		for _, p := range paths[1:] {
			if p.Cost < best.Cost {
				best = p
			}
		}
		nodes[i] = node{set: bits.Single(i), pl: best}
	}

	for len(nodes) > 1 {
		if err := dp.CtxErr(opts.Ctx); err != nil {
			return done(nil, stats(model, costedAtStart, started, pairsConsidered, pairsConnected), err)
		}
		bi, bj, bestRows := -1, -1, 0.0
		for i := 0; i < len(nodes); i++ {
			for j := i + 1; j < len(nodes); j++ {
				pairsConsidered++
				if !q.Connected(nodes[i].set, nodes[j].set) {
					continue
				}
				pairsConnected++
				rows := model.SetRows(nodes[i].set.Union(nodes[j].set))
				if bi < 0 || rows < bestRows {
					bi, bj, bestRows = i, j, rows
				}
			}
		}
		if bi < 0 {
			return done(nil, stats(model, costedAtStart, started, pairsConsidered, pairsConnected),
				fmt.Errorf("greedy: disconnected join graph"))
		}
		a, b := nodes[bi], nodes[bj]
		preds := q.PredsBetween(a.set, b.set)
		var best *plan.Plan
		for _, in := range []cost.JoinInputs{
			{Outer: a.pl, Inner: b.pl, Preds: preds, Rows: bestRows},
			{Outer: b.pl, Inner: a.pl, Preds: preds, Rows: bestRows},
		} {
			for _, p := range model.JoinPlans(in) {
				if best == nil || p.Cost < best.Cost {
					best = p
				}
			}
		}
		merged := node{set: a.set.Union(b.set), pl: best}
		nodes = append(nodes[:bj], nodes[bj+1:]...)
		nodes[bi] = merged
	}

	result := nodes[0].pl
	if q.OrderBy != nil {
		ec := q.OrderEqClass()
		if ec < 0 {
			result = model.SortPlan(result, 0)
		} else if result.Order != ec {
			result = model.SortPlan(result, ec)
		}
	}
	return done(result, stats(model, costedAtStart, started, pairsConsidered, pairsConnected), nil)
}

func stats(model *cost.Model, costedAtStart int64, started time.Time, considered, connected int64) dp.Stats {
	return dp.Stats{
		// GOO keeps one plan per live node: simulated memory is a handful
		// of paths, reported through the same accounting constants.
		Memo: memo.Stats{
			PathsRetained: int64(0),
			PeakSimBytes:  int64(model.Q.NumRelations()) * memo.SimPathBytes,
			SimBytes:      memo.SimPathBytes,
		},
		PlansCosted:     model.PlansCosted - costedAtStart,
		PairsConsidered: considered,
		PairsConnected:  connected,
		Elapsed:         time.Since(started),
	}
}
