package memo

import (
	"sync"
	"testing"

	"sdpopt/internal/bits"
	"sdpopt/internal/plan"
)

func TestShardedGetCreatesOnce(t *testing.T) {
	s := NewSharded()
	set := bits.Of(0, 1)
	calls := 0
	features := func() (float64, float64) { calls++; return 100, 0.5 }

	st, created := s.Get(set, features)
	if !created || st.Rows != 100 || st.Sel != 0.5 {
		t.Fatalf("first Get: created=%v staged=%+v", created, st)
	}
	st2, created := s.Get(set, features)
	if created || st2 != st {
		t.Fatal("second Get created a new class")
	}
	if calls != 1 {
		t.Fatalf("features ran %d times, want 1", calls)
	}
}

// TestShardedOfferMatchesAddPlan replays the same candidate stream into a
// staged class and a real memo class: the dominance rule must retain
// identical winners, and Plans() must hand them over in an order a fresh
// AddPlan sequence reproduces exactly.
func TestShardedOfferMatchesAddPlan(t *testing.T) {
	set := bits.Of(0, 1, 2)
	candidates := []*plan.Plan{
		mkPlan(set, 100, plan.NoOrder),
		mkPlan(set, 70, 3),            // ordered, kept alongside best
		mkPlan(set, 90, 3),            // dominated within order 3
		mkPlan(set, 50, 1),            // new best, also ordered
		mkPlan(set, 60, 1),            // dominated: best already covers order 1 cheaper
		mkPlan(set, 80, plan.NoOrder), // dominated unordered
	}

	m := New(0)
	cls, _ := m.NewClass(set, 3, 10, 1)
	for _, p := range candidates {
		if _, err := m.AddPlan(cls, p); err != nil {
			t.Fatalf("AddPlan: %v", err)
		}
	}

	s := NewSharded()
	st, _ := s.Get(set, func() (float64, float64) { return 10, 1 })
	for _, p := range candidates {
		st.Offer(p)
	}

	want := cls.Paths()
	got := st.Plans()
	if len(got) != len(want) {
		t.Fatalf("Plans len = %d, want %d (%v vs %v)", len(got), len(want), got, want)
	}
	// Replaying the staged winners into a fresh class must land in the
	// identical state — that replay is exactly what the drain does.
	m2 := New(0)
	cls2, _ := m2.NewClass(set, 3, 10, 1)
	for _, p := range got {
		if _, err := m2.AddPlan(cls2, p); err != nil {
			t.Fatalf("replay AddPlan: %v", err)
		}
	}
	replayed := cls2.Paths()
	for i := range want {
		if plan.Compare(replayed[i], want[i]) != 0 {
			t.Fatalf("path %d: replayed %+v, want %+v", i, replayed[i], want[i])
		}
	}
}

func TestShardedOfferDelta(t *testing.T) {
	s := NewSharded()
	set := bits.Of(1, 2)
	st, _ := s.Get(set, func() (float64, float64) { return 10, 1 })

	if d := st.Offer(mkPlan(set, 100, plan.NoOrder)); d != 1 {
		t.Fatalf("first offer delta = %d, want 1", d)
	}
	if d := st.Offer(mkPlan(set, 110, 2)); d != 1 {
		t.Fatalf("ordered offer delta = %d, want 1", d)
	}
	if d := st.Offer(mkPlan(set, 120, plan.NoOrder)); d != 0 {
		t.Fatalf("dominated offer delta = %d, want 0", d)
	}
	// A new best carrying order 2 displaces the separate ordered path:
	// paths go from {best, ordered} to {best covering both} — delta -1.
	if d := st.Offer(mkPlan(set, 50, 2)); d != -1 {
		t.Fatalf("covering best delta = %d, want -1", d)
	}
}

func TestShardedDrainCanonicalOrder(t *testing.T) {
	s := NewSharded()
	sets := []bits.Set{bits.Of(5, 6), bits.Of(0, 1), bits.Of(2, 9), bits.Of(3, 4)}
	for _, set := range sets {
		st, _ := s.Get(set, func() (float64, float64) { return 1, 1 })
		st.Offer(mkPlan(set, 10, plan.NoOrder))
	}
	drained := s.Drain()
	if len(drained) != len(sets) {
		t.Fatalf("Drain len = %d, want %d", len(drained), len(sets))
	}
	for i := 1; i < len(drained); i++ {
		if !drained[i-1].Set.Less(drained[i].Set) {
			t.Fatalf("Drain out of canonical order: %v before %v", drained[i-1].Set, drained[i].Set)
		}
	}
}

// TestShardedConcurrentOffers hammers one set and many distinct sets from
// several goroutines; the winner must be the global minimum regardless of
// interleaving, and every distinct set must surface exactly once.
func TestShardedConcurrentOffers(t *testing.T) {
	s := NewSharded()
	hot := bits.Of(0, 1)
	const workers = 8
	const perWorker = 100
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				st, _ := s.Get(hot, func() (float64, float64) { return 10, 1 })
				st.Offer(mkPlan(hot, float64(1000-w*perWorker-i), plan.NoOrder))
				// Two-bit sets (k%28, k/28) are pairwise distinct across
				// all 800 k values and stay within the 64-bit Set.
				k := w*perWorker + i
				cold := bits.Of(2+k%28, 31+k/28)
				cst, _ := s.Get(cold, func() (float64, float64) { return 1, 1 })
				cst.Offer(mkPlan(cold, 5, plan.NoOrder))
			}
		}(w)
	}
	wg.Wait()

	drained := s.Drain()
	if want := 1 + workers*perWorker; len(drained) != want {
		t.Fatalf("Drain len = %d, want %d", len(drained), want)
	}
	st, created := s.Get(hot, func() (float64, float64) { return 10, 1 })
	if created {
		t.Fatal("hot set recreated after the fact")
	}
	// Global minimum cost offered: 1000 - 7*100 - 99 = 201.
	if best := st.Plans()[0]; best.Cost != 201 {
		t.Fatalf("hot best cost = %v, want 201", best.Cost)
	}
}
