// Package query models SQL join queries as join graphs.
//
// A query is a set of base relations drawn from a catalog, a conjunction of
// equi-join predicates between their columns, and an optional ORDER BY on a
// join column. The join graph view (adjacency between relations, hub
// detection, and the implied-edge closure over shared join columns) is the
// structure the SDP algorithm reasons about.
package query

import (
	"fmt"
	"sort"
	"sync"

	"sdpopt/internal/bits"
	"sdpopt/internal/catalog"
)

// Pred is an equi-join predicate LeftRel.LeftCol = RightRel.RightCol between
// two query-local relation indexes.
type Pred struct {
	LeftRel, LeftCol   int
	RightRel, RightCol int
	// Implied marks predicates added by the shared-join-column closure
	// (R.a=S.b ∧ R.a=T.c ⇒ S.b=T.c) rather than written by the user. The
	// paper notes that industrial rewriters, including PostgreSQL's, perform
	// this inclusion, and that the extra edges can create new hubs for SDP.
	Implied bool
}

// OrderSpec is a user-requested output order on one relation column. Only
// orders on join columns are relevant to the optimizer's interesting-order
// machinery; the workload generator always picks join columns.
type OrderSpec struct {
	Rel, Col int
}

// Filter is a local range selection "column < Bound" on one relation.
// Column values live in [0, NDV), so under a uniform distribution the
// filter's selectivity is Bound/NDV. Filters drive access-path selection:
// a filter on a relation's indexed column turns its index scan into a
// cheap range scan.
type Filter struct {
	Rel, Col int
	Bound    int64
}

// Query is an N-relation equi-join query over a catalog.
type Query struct {
	Cat *catalog.Catalog
	// Rels maps query-local relation index -> catalog relation index.
	Rels []int
	// Preds are the join predicates, user-written plus implied.
	Preds []Pred
	// Filters are local range selections applied at scan time.
	Filters []Filter
	// OrderBy, if non-nil, requests sorted output.
	OrderBy *OrderSpec

	adj     []bits.Set // adjacency bitset per query-local relation
	eqClass map[colRef]int
	numEq   int
	// predsBetween[i] lists predicate indexes incident to relation i.
	predsByRel [][]int

	// canon memoizes the canonical frame (see Canon); queries are
	// immutable after construction, so it is computed at most once.
	canonOnce sync.Once
	canon     *Canon
}

type colRef struct{ rel, col int }

// New validates and finalizes a filter-free query: it checks indexes,
// computes the implied-edge closure, builds adjacency, and verifies the
// join graph is connected (the paper's workloads never require cartesian
// products).
func New(cat *catalog.Catalog, rels []int, preds []Pred, orderBy *OrderSpec) (*Query, error) {
	return NewFiltered(cat, rels, preds, nil, orderBy)
}

// NewFiltered is New with local range selections.
func NewFiltered(cat *catalog.Catalog, rels []int, preds []Pred, filters []Filter, orderBy *OrderSpec) (*Query, error) {
	if len(rels) == 0 {
		return nil, fmt.Errorf("query: no relations")
	}
	if len(rels) > bits.MaxRelations {
		return nil, fmt.Errorf("query: %d relations exceeds the %d-relation limit", len(rels), bits.MaxRelations)
	}
	// The same catalog relation may appear several times under different
	// aliases (the paper's 28-relation chain over a 25-relation schema
	// requires it); each occurrence is an independent query-local relation.
	for _, r := range rels {
		if r < 0 || r >= cat.NumRelations() {
			return nil, fmt.Errorf("query: catalog relation %d out of range", r)
		}
	}
	q := &Query{Cat: cat, Rels: append([]int(nil), rels...), OrderBy: orderBy}
	for _, p := range preds {
		if err := q.checkPred(p); err != nil {
			return nil, err
		}
		if p.LeftRel == p.RightRel {
			return nil, fmt.Errorf("query: self-join predicate on relation %d", p.LeftRel)
		}
		q.Preds = append(q.Preds, p)
	}
	if orderBy != nil {
		if orderBy.Rel < 0 || orderBy.Rel >= len(rels) {
			return nil, fmt.Errorf("query: ORDER BY relation %d out of range", orderBy.Rel)
		}
		if orderBy.Col < 0 || orderBy.Col >= len(cat.Relation(rels[orderBy.Rel]).Cols) {
			return nil, fmt.Errorf("query: ORDER BY column %d out of range", orderBy.Col)
		}
	}
	for _, f := range filters {
		if f.Rel < 0 || f.Rel >= len(rels) {
			return nil, fmt.Errorf("query: filter relation %d out of range", f.Rel)
		}
		if f.Col < 0 || f.Col >= len(cat.Relation(rels[f.Rel]).Cols) {
			return nil, fmt.Errorf("query: filter column %d out of range", f.Col)
		}
		if f.Bound < 1 {
			return nil, fmt.Errorf("query: filter bound %d must be at least 1", f.Bound)
		}
		q.Filters = append(q.Filters, f)
	}
	q.closeImpliedEdges()
	q.buildIndexes()
	if !q.connected() {
		return nil, fmt.Errorf("query: join graph is disconnected")
	}
	return q, nil
}

func (q *Query) checkPred(p Pred) error {
	for _, side := range [2][2]int{{p.LeftRel, p.LeftCol}, {p.RightRel, p.RightCol}} {
		rel, col := side[0], side[1]
		if rel < 0 || rel >= len(q.Rels) {
			return fmt.Errorf("query: predicate relation %d out of range", rel)
		}
		if col < 0 || col >= len(q.Cat.Relation(q.Rels[rel]).Cols) {
			return fmt.Errorf("query: predicate column %d out of range for relation %d", col, rel)
		}
	}
	return nil
}

// closeImpliedEdges computes the transitive closure of equality over join
// columns. Columns connected by predicates form equivalence classes; every
// pair of class members in distinct relations becomes a join edge. Edges not
// present in the original predicate list are appended as Implied.
func (q *Query) closeImpliedEdges() {
	// Union-find over column references.
	parent := map[colRef]colRef{}
	var find func(colRef) colRef
	find = func(x colRef) colRef {
		p, ok := parent[x]
		if !ok || p == x {
			parent[x] = x
			return x
		}
		root := find(p)
		parent[x] = root
		return root
	}
	union := func(a, b colRef) {
		ra, rb := find(a), find(b)
		if ra != rb {
			parent[ra] = rb
		}
	}
	for _, p := range q.Preds {
		union(colRef{p.LeftRel, p.LeftCol}, colRef{p.RightRel, p.RightCol})
	}
	// Group members per class root, deterministically ordered.
	members := map[colRef][]colRef{}
	var refs []colRef
	for x := range parent {
		refs = append(refs, x)
	}
	sort.Slice(refs, func(i, j int) bool {
		if refs[i].rel != refs[j].rel {
			return refs[i].rel < refs[j].rel
		}
		return refs[i].col < refs[j].col
	})
	for _, x := range refs {
		r := find(x)
		members[r] = append(members[r], x)
	}
	// Existing edges (per relation pair per class) so we don't duplicate.
	type edgeKey struct {
		a, b colRef
	}
	have := map[edgeKey]bool{}
	norm := func(a, b colRef) edgeKey {
		if b.rel < a.rel || (b.rel == a.rel && b.col < a.col) {
			a, b = b, a
		}
		return edgeKey{a, b}
	}
	for _, p := range q.Preds {
		have[norm(colRef{p.LeftRel, p.LeftCol}, colRef{p.RightRel, p.RightCol})] = true
	}
	// Assign equivalence class ids and add missing edges.
	q.eqClass = map[colRef]int{}
	var roots []colRef
	for r := range members {
		roots = append(roots, r)
	}
	sort.Slice(roots, func(i, j int) bool {
		a, b := members[roots[i]][0], members[roots[j]][0]
		if a.rel != b.rel {
			return a.rel < b.rel
		}
		return a.col < b.col
	})
	for id, r := range roots {
		ms := members[r]
		for _, m := range ms {
			q.eqClass[m] = id
		}
		for i := 0; i < len(ms); i++ {
			for j := i + 1; j < len(ms); j++ {
				if ms[i].rel == ms[j].rel {
					continue
				}
				k := norm(ms[i], ms[j])
				if have[k] {
					continue
				}
				have[k] = true
				q.Preds = append(q.Preds, Pred{
					LeftRel: ms[i].rel, LeftCol: ms[i].col,
					RightRel: ms[j].rel, RightCol: ms[j].col,
					Implied: true,
				})
			}
		}
	}
	q.numEq = len(roots)
}

func (q *Query) buildIndexes() {
	n := len(q.Rels)
	q.adj = make([]bits.Set, n)
	q.predsByRel = make([][]int, n)
	for i, p := range q.Preds {
		q.adj[p.LeftRel] = q.adj[p.LeftRel].Add(p.RightRel)
		q.adj[p.RightRel] = q.adj[p.RightRel].Add(p.LeftRel)
		q.predsByRel[p.LeftRel] = append(q.predsByRel[p.LeftRel], i)
		q.predsByRel[p.RightRel] = append(q.predsByRel[p.RightRel], i)
	}
}

func (q *Query) connected() bool {
	if len(q.Rels) == 1 {
		return true
	}
	reached := bits.Single(0)
	frontier := bits.Single(0)
	for !frontier.IsEmpty() {
		next := bits.Set{}
		frontier.Each(func(i int) { next = next.Union(q.adj[i]) })
		next = next.Diff(reached)
		reached = reached.Union(next)
		frontier = next
	}
	return reached == bits.Full(len(q.Rels))
}

// NumRelations returns the number of base relations in the query.
func (q *Query) NumRelations() int { return len(q.Rels) }

// Relation returns the catalog relation behind query-local index i.
func (q *Query) Relation(i int) *catalog.Relation {
	return q.Cat.Relation(q.Rels[i])
}

// Adjacent returns the relations adjacent to query-local relation i.
func (q *Query) Adjacent(i int) bits.Set { return q.adj[i] }

// Neighbors returns the relations outside s adjacent to any member of s —
// the neighbor set of s viewed as a contracted node of the join graph.
func (q *Query) Neighbors(s bits.Set) bits.Set {
	switch s.Len() {
	case 0:
		return bits.Set{}
	case 1: // single relation: adjacency is precomputed
		return q.adj[s.Min()] // adj[i] never contains i, so no Diff needed
	}
	var n bits.Set
	for it := s.Iter(); ; {
		i, ok := it.Next()
		if !ok {
			break
		}
		n = n.Union(q.adj[i])
	}
	return n.Diff(s)
}

// Connected reports whether the two disjoint sets are joined by at least one
// edge, i.e. whether their join avoids a cartesian product.
func (q *Query) Connected(a, b bits.Set) bool {
	return q.Neighbors(a).Overlaps(b)
}

// ConnectedSet reports whether the relations of s form a connected subgraph.
func (q *Query) ConnectedSet(s bits.Set) bool {
	if s.IsEmpty() {
		return false
	}
	start := bits.Single(s.Min())
	reached, frontier := start, start
	for !frontier.IsEmpty() {
		var next bits.Set
		frontier.Each(func(i int) { next = next.Union(q.adj[i].Intersect(s)) })
		next = next.Diff(reached)
		reached = reached.Union(next)
		frontier = next
	}
	return reached == s
}

// PredsBetween returns the indexes into Preds of every predicate with one
// side in a and the other in b.
func (q *Query) PredsBetween(a, b bits.Set) []int {
	return q.AppendPredsBetween(nil, a, b)
}

// AppendPredsBetween appends to dst the indexes into Preds of every predicate
// with one side in a and the other in b, returning the extended slice in
// ascending predicate order. It is the allocation-free form of PredsBetween:
// the enumeration hot path passes a reused scratch slice (dst[:0]) so the
// per-pair predicate lookup allocates nothing once the scratch has grown.
func (q *Query) AppendPredsBetween(dst []int, a, b bits.Set) []int {
	base := len(dst)
	smaller := a
	if b.Len() < a.Len() {
		smaller = b
	}
	for it := smaller.Iter(); ; {
		i, ok := it.Next()
		if !ok {
			break
		}
		for _, pi := range q.predsByRel[i] {
			p := q.Preds[pi]
			if (a.Has(p.LeftRel) && b.Has(p.RightRel)) || (a.Has(p.RightRel) && b.Has(p.LeftRel)) {
				dst = append(dst, pi)
			}
		}
	}
	// For disjoint a and b each matching predicate is found exactly once (a
	// predicate reached twice would need both sides in `smaller`, which the
	// cross test rejects), so deduplication reduces to dropping adjacent
	// repeats after the sort — kept for safety with overlapping inputs.
	added := dst[base:]
	sort.Ints(added)
	w := base
	for k, pi := range added {
		if k > 0 && pi == added[k-1] {
			continue
		}
		dst[w] = pi
		w++
	}
	return dst[:w]
}

// PredsWithin returns the indexes of every predicate whose both sides fall
// inside s.
func (q *Query) PredsWithin(s bits.Set) []int {
	var out []int
	for i, p := range q.Preds {
		if s.Has(p.LeftRel) && s.Has(p.RightRel) {
			out = append(out, i)
		}
	}
	return out
}

// EqClass returns the join-column equivalence class id of (rel, col), or -1
// if the column participates in no join predicate. Class ids identify
// interesting orders: a plan sorted on any member column of a class can feed
// a merge join on any predicate of that class.
func (q *Query) EqClass(rel, col int) int {
	id, ok := q.eqClass[colRef{rel, col}]
	if !ok {
		return -1
	}
	return id
}

// NumEqClasses returns the number of join-column equivalence classes.
func (q *Query) NumEqClasses() int { return q.numEq }

// PredEqClass returns the equivalence class of predicate pi's columns (both
// sides are in the same class by construction).
func (q *Query) PredEqClass(pi int) int {
	p := q.Preds[pi]
	return q.EqClass(p.LeftRel, p.LeftCol)
}

// OrderEqClass returns the equivalence class of the ORDER BY column, or -1
// if the query is unordered or ordered on a non-join column.
func (q *Query) OrderEqClass() int {
	if q.OrderBy == nil {
		return -1
	}
	return q.EqClass(q.OrderBy.Rel, q.OrderBy.Col)
}

// FiltersOn returns the filters applying to query-local relation i.
func (q *Query) FiltersOn(i int) []Filter {
	var out []Filter
	for _, f := range q.Filters {
		if f.Rel == i {
			out = append(out, f)
		}
	}
	return out
}

// HubRels returns the root hubs: base relations adjacent to three or more
// relations in the join graph.
func (q *Query) HubRels() bits.Set {
	var hubs bits.Set
	for i := range q.Rels {
		if q.adj[i].Len() >= 3 {
			hubs = hubs.Add(i)
		}
	}
	return hubs
}

// IsHub reports whether the JCR s, treated as a single contracted relation,
// is a hub: it has join edges to three or more relations outside itself.
// For a singleton this coincides with root-hub membership. Hubs are
// recomputed per SDP level with exactly this rule (Section 2.1's example:
// after {1,2} is retained it counts as a hub because it has edges to 3, 4
// and 5).
func (q *Query) IsHub(s bits.Set) bool {
	return q.Neighbors(s).Len() >= 3
}

// String renders the query as SQL text.
func (q *Query) String() string { return q.SQL() }
